//! Worker-side query execution (paper §3.1, "low-level vertex-centric,
//! local knowledge").
//!
//! A [`Worker`] owns, for every query it participates in, a sparse
//! [`QueryLocal`]: the query-specific vertex data of the vertices the query
//! activated here (its local scope `LS(q,w)`), plus double-buffered message
//! inboxes. Sparse storage is essential for the multi-query model — dense
//! per-query arrays would cost `O(|V| · |Q|)` memory while localized
//! queries touch a tiny graph fraction.
//!
//! ## The message plane
//!
//! The pending inbox is a *flat append-only* `Vec<(VertexId, Message)>`:
//! delivery is a bump-pointer push, with no per-vertex `HashMap` entry or
//! per-message heap `Vec` growth on the hot path. The inbox is sorted and
//! **coalesced exactly once**, at the superstep freeze, into a run-length
//! layout (`cur` runs over a contiguous `cur_msgs` buffer) that `execute`
//! walks in deterministic vertex order. Programs with a combiner
//! ([`crate::VertexProgram::combine`]) collapse each vertex's run to a
//! single message during that coalesce (receiver side) and again when a
//! superstep's remote messages are bucketed per destination worker
//! (sender side), so N relaxations addressed to one vertex cost 1 on the
//! wire and 1 at apply time. [`SuperstepStats`] reports both the
//! pre-combine and the post-combine remote counts so the runtimes can
//! charge combined traffic while still accounting for what combining
//! saved.
//!
//! Since the heterogeneous-query redesign the worker is **not generic**:
//! each query's local state is held behind the object-safe [`LocalState`]
//! facade, and every operation whose signature mentions program-specific
//! types (message delivery, superstep execution, vertex migration) is
//! routed through that query's [`QueryTask`](crate::task::QueryTask),
//! which downcasts back to the typed [`QueryLocal`] internally. One worker
//! therefore executes SSSP, POI, and reachability queries side by side.
//!
//! Workers are runtime-agnostic: both the discrete-event engine and the
//! thread runtime drive the same code, passing a routing closure that
//! resolves the current vertex→worker assignment.

use std::any::Any;
use std::ops::Range;
use std::sync::Arc;

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{Topology, VertexId};

use crate::program::{Context, VertexProgram};
use crate::task::{Envelope, MessageBatch, QueryTask};
use crate::QueryId;

/// Counters reported after one local superstep; the sizes in it are what
/// the worker piggybacks to the controller as `stats(q, |LS(q,w)|, I_w, w)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Vertex functions executed.
    pub executed: usize,
    /// Messages consumed (post-combine: what the compute cost model
    /// charges per `message_apply`).
    pub messages_in: usize,
    /// Messages that stayed on this worker.
    pub local_deliveries: usize,
    /// Messages destined for other workers, *after* sender-side combining
    /// — what actually crosses the wire and what the network cost model
    /// prices.
    pub remote_deliveries: usize,
    /// Messages destined for other workers as produced by `compute`,
    /// *before* sender-side combining. `remote_deliveries ≤
    /// remote_pre_combine`; the difference is the traffic the combiner
    /// saved.
    pub remote_pre_combine: usize,
    /// Wire batches the remote messages occupy under the paper's batch
    /// cap (32 messages per batch): `Σ_dest ⌈msgs_dest / cap⌉`. Matches
    /// what the simulation's `NetworkModel::transfer_cost` prices, so
    /// thread-runtime accounting and sim pricing agree.
    pub remote_batches: usize,
    /// `|LS(q,w)|` after the step.
    pub local_scope: usize,
    /// Elastic-pool compute tasks this report covers — one
    /// per-(query, partition) superstep execution is one task, so a
    /// single report carries `1` and aggregation across the involved
    /// partitions yields the superstep's task count.
    pub tasks: usize,
}

/// The object-safe facade over one query's per-worker state: everything a
/// runtime needs that does *not* mention program-specific types. Typed
/// operations reach the concrete [`QueryLocal`] by downcasting through
/// `Any` (the `LocalState: Any` supertrait) inside the query's task.
pub trait LocalState: Any + Send {
    /// Does a next superstep have pending messages here?
    fn has_pending(&self) -> bool;

    /// `(active vertices, messages)` pending for the next superstep.
    /// Counted pre-coalesce (the inbox is flat until the freeze), so the
    /// message count is an upper bound on what the superstep will apply.
    fn pending_counts(&self) -> (usize, usize);

    /// Freeze the pending inbox as the current superstep's input; returns
    /// `(active vertices, messages)` for the cost model (messages
    /// post-combine — what will actually be applied).
    fn freeze(&mut self) -> (usize, usize);

    /// `(active vertices, messages)` of the already-frozen superstep input.
    fn frozen_counts(&self) -> (usize, usize);

    /// `|LS(q,w)|`: vertices the query has activated on this worker.
    fn scope_size(&self) -> usize;

    /// Visit every live local-scope vertex. The visitor replaces the old
    /// `scope_vertices() -> Vec` accessor so barrier-phase stat gathering
    /// can stream ids into a caller-owned buffer instead of allocating a
    /// fresh `Vec` per (query, worker) pair.
    fn for_each_scope_vertex(&self, f: &mut dyn FnMut(VertexId));
}

/// Per-query, per-worker execution state for one program type `P`.
pub struct QueryLocal<P: VertexProgram> {
    /// Frozen superstep input: per-vertex runs (sorted by vertex id for
    /// deterministic execution order) over the contiguous `cur_msgs`
    /// buffer.
    cur: Vec<(VertexId, Range<usize>)>,
    /// The frozen messages, grouped per `cur` run.
    cur_msgs: Vec<P::Message>,
    /// Flat append-only inbox accumulating messages for the next
    /// superstep; sorted + coalesced once at [`LocalState::freeze`].
    next: Vec<(VertexId, P::Message)>,
    /// Query-specific vertex data `D_v` for activated vertices.
    state: FxHashMap<VertexId, P::State>,
    /// The program, kept for the combiner at coalesce time.
    program: Arc<P>,
    /// Apply the program's combiner (engines disable this to verify
    /// output equivalence).
    combine: bool,
}

/// Worker-owned sender-side combine index: a stamp-tagged
/// direct-address array `vertex → slot in its destination bucket`.
///
/// One probe is a single indexed read (no hashing, no clearing — bumping
/// the stamp invalidates every tag at once), so combining a remote
/// message costs less than delivering it would have. Memory is `O(|V|)`
/// *per worker* — the same order as the vertex→worker assignment the
/// worker already routes against — and is shared by every query on the
/// worker, preserving the sparse `O(scope)` per-query storage the
/// multi-query model depends on. A destination vertex routes to exactly
/// one worker, so the tag needs no worker component.
#[derive(Default)]
pub struct CombineScratch {
    /// `(stamp, bucket slot)` per vertex id.
    tags: Vec<(u64, u32)>,
    /// Current superstep's stamp; tags from older stamps are stale.
    stamp: u64,
}

impl CombineScratch {
    /// Start a new superstep over a graph of `num_vertices`: grow the tag
    /// array if needed and invalidate every previous tag.
    #[inline]
    pub fn begin(&mut self, num_vertices: usize) {
        if self.tags.len() < num_vertices {
            self.tags.resize(num_vertices, (0, 0));
        }
        self.stamp += 1;
    }

    /// The live slot for `v` in this stamp generation, if any.
    #[inline]
    fn slot(&self, v: VertexId) -> Option<usize> {
        let (e, s) = self.tags[v.0 as usize];
        (e == self.stamp).then_some(s as usize)
    }

    /// Record `v`'s (newest) bucket slot for this stamp generation.
    #[inline]
    fn set_slot(&mut self, v: VertexId, slot: usize) {
        self.tags[v.0 as usize] = (self.stamp, slot as u32);
    }
}

impl<P: VertexProgram> QueryLocal<P> {
    /// Fresh empty state for `program`; `combine` gates the combiner.
    pub(crate) fn new(program: Arc<P>, combine: bool) -> Self {
        QueryLocal {
            cur: Vec::new(),
            cur_msgs: Vec::new(),
            next: Vec::new(),
            state: FxHashMap::default(),
            program,
            combine,
        }
    }

    /// Append one pending message, opportunistically combining into the
    /// inbox tail when the previous delivery addressed the same vertex
    /// (sender-side-combined batches arrive vertex-sorted, so intra-batch
    /// duplicates are adjacent). Cross-batch duplicates coalesce at the
    /// freeze.
    #[inline]
    fn push_pending(&mut self, to: VertexId, msg: P::Message) {
        if self.combine {
            if let Some((last_v, acc)) = self.next.last_mut() {
                if *last_v == to && self.program.combine(acc, &msg) {
                    return;
                }
            }
        }
        self.next.push((to, msg));
    }
}

impl<P: VertexProgram> LocalState for QueryLocal<P> {
    fn has_pending(&self) -> bool {
        !self.next.is_empty()
    }

    fn pending_counts(&self) -> (usize, usize) {
        let distinct: FxHashSet<VertexId> = self.next.iter().map(|(v, _)| *v).collect();
        (distinct.len(), self.next.len())
    }

    /// Called at *barrier release* (not task start): all involved workers
    /// freeze at the same instant, so messages produced by another
    /// worker's in-flight superstep can never leak into this one — the
    /// BSP isolation that makes iteration counts partition-independent.
    ///
    /// This is the single sort + coalesce of the inbox lifecycle: the
    /// flat pending vec is stably sorted by vertex (preserving arrival
    /// order within a vertex) and split into per-vertex runs; a combiner
    /// collapses each run as it is built.
    fn freeze(&mut self) -> (usize, usize) {
        debug_assert!(self.cur.is_empty(), "freeze with unexecuted frozen inbox");
        let mut buf = std::mem::take(&mut self.next);
        buf.sort_by_key(|(v, _)| *v); // stable: arrival order within a vertex
        self.cur_msgs.clear();
        self.cur_msgs.reserve(buf.len());
        for (v, m) in buf.drain(..) {
            match self.cur.last_mut() {
                Some((last_v, run)) if *last_v == v => {
                    if self.combine {
                        let acc = &mut self.cur_msgs[run.end - 1];
                        if self.program.combine(acc, &m) {
                            continue;
                        }
                    }
                    self.cur_msgs.push(m);
                    run.end += 1;
                }
                _ => {
                    let start = self.cur_msgs.len();
                    self.cur_msgs.push(m);
                    self.cur.push((v, start..start + 1));
                }
            }
        }
        // Hand the drained (now empty) buffer back as the next inbox, so
        // its capacity amortizes across the query's supersteps.
        self.next = buf;
        (self.cur.len(), self.cur_msgs.len())
    }

    fn frozen_counts(&self) -> (usize, usize) {
        (self.cur.len(), self.cur_msgs.len())
    }

    fn scope_size(&self) -> usize {
        self.state.len()
    }

    fn for_each_scope_vertex(&self, f: &mut dyn FnMut(VertexId)) {
        for v in self.state.keys() {
            f(*v);
        }
    }
}

impl<P: VertexProgram> QueryLocal<P> {
    /// Deliver messages into the next-superstep inbox (a flat append).
    pub(crate) fn deliver(&mut self, msgs: impl IntoIterator<Item = (VertexId, P::Message)>) {
        for (v, m) in msgs {
            self.push_pending(v, m);
        }
    }

    /// Execute the frozen superstep.
    ///
    /// `route` resolves the *current* assignment; messages to `home` go
    /// straight into the next inbox, others are returned bucketed by
    /// destination worker as `(worker, pre-combine count, messages)` —
    /// each bucket vertex-sorted and combined when the program has a
    /// combiner.
    #[allow(clippy::type_complexity)]
    pub(crate) fn execute(
        &mut self,
        graph: &Topology,
        program: &P,
        prev_aggregate: &P::Aggregate,
        home: usize,
        route: &dyn Fn(VertexId) -> usize,
        scratch: &mut CombineScratch,
    ) -> (
        SuperstepStats,
        P::Aggregate,
        Vec<(usize, usize, Vec<(VertexId, P::Message)>)>,
    ) {
        let mut stats = SuperstepStats {
            tasks: 1,
            ..SuperstepStats::default()
        };
        let mut aggregate = program.aggregate_identity();
        let mut outgoing: Vec<(VertexId, P::Message)> = Vec::new();
        let combine = |a: &mut P::Aggregate, b: &P::Aggregate| program.aggregate_combine(a, b);

        let mut cur = std::mem::take(&mut self.cur);
        let mut cur_msgs = std::mem::take(&mut self.cur_msgs);
        for (v, run) in &cur {
            let msgs = &cur_msgs[run.clone()];
            let state = self.state.entry(*v).or_insert_with(|| program.init_state());
            let mut ctx = Context {
                outgoing: &mut outgoing,
                aggregate: &mut aggregate,
                prev_aggregate,
                combine: &combine,
            };
            program.compute(graph, *v, state, msgs, &mut ctx);
            stats.executed += 1;
            stats.messages_in += msgs.len();
        }
        // Hand the frozen buffers back empty: their capacity amortizes
        // across the query's supersteps instead of reallocating from zero
        // at every freeze.
        cur.clear();
        cur_msgs.clear();
        self.cur = cur;
        self.cur_msgs = cur_msgs;

        // Route produced messages, applying the combiner *sender-side* as
        // the buckets are built: one direct-address scratch probe per
        // remote message merges it into an earlier message to the same
        // vertex — no hashing, no sort, nothing for the receiver to redo.
        // Bucket counts track `(pre-combine, messages)` per worker.
        let mut buckets: FxHashMap<usize, (usize, Vec<(VertexId, P::Message)>)> =
            FxHashMap::default();
        if self.combine {
            scratch.begin(graph.num_vertices());
        }
        for (to, msg) in outgoing {
            let w = route(to);
            if w == home {
                self.push_pending(to, msg);
                stats.local_deliveries += 1;
                continue;
            }
            stats.remote_pre_combine += 1;
            let (pre, bucket) = buckets.entry(w).or_default();
            *pre += 1;
            if self.combine {
                if let Some(slot) = scratch.slot(to) {
                    if program.combine(&mut bucket[slot].1, &msg) {
                        continue;
                    }
                }
                // First sighting — or a declined combine: later messages
                // target the newest occurrence.
                scratch.set_slot(to, bucket.len());
            }
            bucket.push((to, msg));
        }
        stats.local_scope = self.state.len();

        let mut remote: Vec<(usize, usize, Vec<(VertexId, P::Message)>)> = Vec::new();
        for (w, (pre, msgs)) in buckets {
            stats.remote_deliveries += msgs.len();
            remote.push((w, pre, msgs));
        }
        remote.sort_unstable_by_key(|(w, _, _)| *w); // deterministic order
        (stats, aggregate, remote)
    }

    /// Extract all data of the given vertices, for migration to another
    /// worker during a global barrier. The frozen inbox must be empty (no
    /// superstep in flight), which the engine guarantees by quiescing
    /// workers first.
    #[allow(clippy::type_complexity)]
    pub(crate) fn extract(
        &mut self,
        vertices: &FxHashSet<VertexId>,
    ) -> Vec<(VertexId, Option<P::State>, Vec<P::Message>)> {
        debug_assert!(self.cur.is_empty(), "migration during a running superstep");
        // Split the flat inbox: moved vertices' messages leave (grouped
        // per vertex, arrival order preserved), the rest stays pending.
        let mut moved_msgs: FxHashMap<VertexId, Vec<P::Message>> = FxHashMap::default();
        let mut kept = Vec::with_capacity(self.next.len());
        for (v, m) in std::mem::take(&mut self.next) {
            if vertices.contains(&v) {
                moved_msgs.entry(v).or_default().push(m);
            } else {
                kept.push((v, m));
            }
        }
        self.next = kept;
        let touched: Vec<VertexId> = self
            .state
            .keys()
            .filter(|v| vertices.contains(v))
            .copied()
            .chain(moved_msgs.keys().copied())
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        let mut entries = Vec::new();
        for v in touched {
            let st = self.state.remove(&v);
            let msgs = moved_msgs.remove(&v).unwrap_or_default();
            entries.push((v, st, msgs));
        }
        entries.sort_unstable_by_key(|(v, _, _)| *v);
        entries
    }

    /// Inject migrated vertex data (the counterpart of
    /// [`QueryLocal::extract`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn inject(&mut self, entries: Vec<(VertexId, Option<P::State>, Vec<P::Message>)>) {
        for (v, st, msgs) in entries {
            if let Some(st) = st {
                self.state.insert(v, st);
            }
            for m in msgs {
                self.push_pending(v, m);
            }
        }
    }

    /// Consume the local, yielding the vertex states it accumulated (for
    /// [`VertexProgram::finalize`]).
    pub(crate) fn into_states(self) -> FxHashMap<VertexId, P::State> {
        self.state
    }
}

/// Sort a message bucket by destination vertex and collapse each vertex's
/// run through the program's combiner, in place (swap-compaction, no
/// allocation beyond the sort's own scratch — and `sort_unstable` has
/// none). Unstable sort is safe under the combiner contract: the
/// within-vertex fold is order-insensitive, and unstable sort is still
/// deterministic for a fixed input permutation.
pub(crate) fn combine_in_place<P: VertexProgram>(
    program: &P,
    msgs: &mut Vec<(VertexId, P::Message)>,
) {
    if msgs.len() <= 1 {
        return;
    }
    msgs.sort_unstable_by_key(|(v, _)| *v);
    let mut w = 0usize; // last kept entry
    for r in 1..msgs.len() {
        let (kept, rest) = msgs.split_at_mut(r);
        let (v, m) = &rest[0];
        let (last_v, acc) = &mut kept[w];
        if *last_v == *v && program.combine(acc, m) {
            continue;
        }
        w += 1;
        msgs.swap(w, r);
    }
    msgs.truncate(w + 1);
}

/// One worker: the container of all queries' local state on this
/// partition. Queries of *different* program types coexist; each entry is
/// a type-erased [`LocalState`] that the query's task downcasts.
pub struct Worker {
    /// This worker's id (index into the cluster).
    pub id: usize,
    queries: FxHashMap<QueryId, Box<dyn LocalState>>,
    /// Combiners enabled for newly created query locals.
    combiners: bool,
    /// The wire batch cap used for [`SuperstepStats::remote_batches`]
    /// accounting (the paper's 32-message batches).
    batch_max_msgs: usize,
    /// Shared sender-side combine index (see [`CombineScratch`]).
    scratch: CombineScratch,
}

impl Worker {
    /// An empty worker with combiners on and the paper's 32-message batch
    /// cap.
    pub fn new(id: usize) -> Self {
        Self::configured(id, true, 32)
    }

    /// An empty worker with explicit combiner gating and batch cap (the
    /// engines thread [`crate::SystemConfig`] through here).
    pub fn configured(id: usize, combiners: bool, batch_max_msgs: usize) -> Self {
        Worker {
            id,
            queries: FxHashMap::default(),
            combiners,
            batch_max_msgs: batch_max_msgs.max(1),
            scratch: CombineScratch::default(),
        }
    }

    fn local_or_new(&mut self, task: &dyn QueryTask, q: QueryId) -> &mut Box<dyn LocalState> {
        let combiners = self.combiners;
        self.queries
            .entry(q)
            .or_insert_with(|| task.new_local(combiners))
    }

    /// Deliver a message batch into query `q`'s next-superstep inbox.
    pub fn deliver(&mut self, task: &dyn QueryTask, q: QueryId, batch: MessageBatch) {
        let local = self.local_or_new(task, q);
        task.deliver(local.as_mut(), batch);
    }

    /// Does query `q` have pending messages for a next superstep here?
    pub fn has_pending(&self, q: QueryId) -> bool {
        self.queries.get(&q).is_some_and(|l| l.has_pending())
    }

    /// `(active vertices, messages)` pending for query `q`'s next superstep.
    pub fn pending_counts(&self, q: QueryId) -> (usize, usize) {
        self.queries.get(&q).map_or((0, 0), |l| l.pending_counts())
    }

    /// Freeze query `q`'s pending inbox as the current superstep's input;
    /// returns `(active vertices, messages)` for the cost model.
    pub fn freeze(&mut self, q: QueryId) -> (usize, usize) {
        self.queries.get_mut(&q).map_or((0, 0), |l| l.freeze())
    }

    /// `(active vertices, messages)` of the already-frozen superstep input.
    pub fn frozen_counts(&self, q: QueryId) -> (usize, usize) {
        self.queries.get(&q).map_or((0, 0), |l| l.frozen_counts())
    }

    /// Execute the frozen superstep of query `q` under its `task`. The
    /// returned stats carry both pre- and post-combine remote counts plus
    /// the batch count under this worker's wire cap.
    pub fn execute(
        &mut self,
        q: QueryId,
        task: &dyn QueryTask,
        graph: &Topology,
        prev_aggregate: &Envelope,
        route: &dyn Fn(VertexId) -> usize,
    ) -> (SuperstepStats, Envelope, Vec<(usize, MessageBatch)>) {
        let home = self.id;
        let batch_max = self.batch_max_msgs;
        let combiners = self.combiners;
        // Split borrows: the query map and the combine scratch are
        // disjoint worker fields.
        let local = self
            .queries
            .entry(q)
            .or_insert_with(|| task.new_local(combiners));
        let (mut stats, agg, remote) = task.execute(
            local.as_mut(),
            graph,
            prev_aggregate,
            home,
            route,
            &mut self.scratch,
        );
        stats.remote_batches = remote
            .iter()
            .map(|(_, b)| b.len().div_ceil(batch_max))
            .sum();
        (stats, agg, remote)
    }

    /// `|LS(q,w)|`: vertices query `q` has activated on this worker.
    pub fn scope_size(&self, q: QueryId) -> usize {
        self.queries.get(&q).map_or(0, |l| l.scope_size())
    }

    /// Visit query `q`'s live local-scope vertices without allocating.
    pub fn for_each_scope_vertex(&self, q: QueryId, f: &mut dyn FnMut(VertexId)) {
        if let Some(l) = self.queries.get(&q) {
            l.for_each_scope_vertex(f);
        }
    }

    /// The live local scope vertex set of query `q`, materialized.
    /// Prefer [`Worker::for_each_scope_vertex`] where a caller-owned
    /// buffer can absorb the ids.
    pub fn scope_vertices(&self, q: QueryId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.for_each_scope_vertex(q, &mut |v| out.push(v));
        out
    }

    /// Queries with state on this worker.
    pub fn active_queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// Remove query `q` entirely, returning its local state (for the
    /// task's `finalize`).
    pub fn take_local(&mut self, q: QueryId) -> Option<Box<dyn LocalState>> {
        self.queries.remove(&q)
    }

    /// Extract all per-query data of the given vertices, for migration to
    /// another worker during a global barrier. `task_of` resolves each
    /// query's task (which performs the typed extraction).
    pub fn extract_vertices(
        &mut self,
        task_of: &dyn Fn(QueryId) -> std::sync::Arc<dyn QueryTask>,
        vertices: &FxHashSet<VertexId>,
    ) -> Vec<(QueryId, Envelope)> {
        let mut out = Vec::new();
        for (&q, local) in self.queries.iter_mut() {
            if let Some(envelope) = task_of(q).extract(local.as_mut(), vertices) {
                out.push((q, envelope));
            }
        }
        out.sort_unstable_by_key(|(q, _)| *q);
        out
    }

    /// Inject migrated vertex data (the counterpart of
    /// [`Worker::extract_vertices`]).
    pub fn inject_vertices(
        &mut self,
        task_of: &dyn Fn(QueryId) -> std::sync::Arc<dyn QueryTask>,
        data: Vec<(QueryId, Envelope)>,
    ) {
        for (q, envelope) in data {
            let task = task_of(q);
            let local = self.local_or_new(task.as_ref(), q);
            task.inject(local.as_mut(), envelope);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::ReachProgram;
    use crate::task::TypedTask;
    use qgraph_graph::GraphBuilder;

    fn line() -> Topology {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        Topology::new(b.build())
    }

    fn reach_task() -> TypedTask<ReachProgram> {
        TypedTask::new(ReachProgram::new(VertexId(0)))
    }

    fn batch(task: &TypedTask<ReachProgram>, msgs: Vec<(VertexId, u32)>) -> MessageBatch {
        task.batch_for_test(msgs)
    }

    #[test]
    fn deliver_freeze_execute_cycle() {
        let g = line();
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        assert!(w.has_pending(q));
        assert_eq!(w.pending_counts(q), (1, 1));

        let (active, msgs) = w.freeze(q);
        assert_eq!((active, msgs), (1, 1));
        let prev = task.aggregate_identity();
        let (stats, _agg, remote) = w.execute(q, &task, &g, &prev, &|_| 0);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.local_deliveries, 1); // 0 -> 1 stays local
        assert!(remote.is_empty());
        assert_eq!(stats.remote_batches, 0);
        assert_eq!(w.scope_size(q), 1);
        assert!(w.has_pending(q)); // vertex 1 activated
    }

    #[test]
    fn remote_messages_bucketed_by_destination() {
        let g = line();
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        // Route everything except vertex 0 to worker 1.
        let prev = task.aggregate_identity();
        let (stats, _, remote) = w.execute(q, &task, &g, &prev, &|v| usize::from(v != VertexId(0)));
        assert_eq!(stats.remote_deliveries, 1);
        assert_eq!(stats.remote_pre_combine, 1);
        assert_eq!(stats.remote_batches, 1);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].0, 1);
        assert_eq!(remote[0].1.len(), 1);
        assert!(!w.has_pending(q));
    }

    #[test]
    fn freeze_coalesces_duplicate_deliveries_with_combiner() {
        // Reach's combiner keeps the minimum hop: three messages to one
        // vertex freeze into a single apply.
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(1), 3)]));
        w.deliver(&task, q, batch(&task, vec![(VertexId(2), 5)]));
        w.deliver(
            &task,
            q,
            batch(&task, vec![(VertexId(1), 1), (VertexId(1), 2)]),
        );
        let (_, pending) = w.pending_counts(q);
        let (active, msgs) = w.freeze(q);
        assert_eq!(active, 2);
        assert!(msgs <= pending, "coalesce never grows the inbox");
        assert_eq!(msgs, 2, "per-vertex runs collapse to one message");
    }

    #[test]
    fn combiner_disabled_keeps_every_message() {
        let task = reach_task();
        let mut w = Worker::configured(0, false, 32);
        let q = QueryId(0);
        w.deliver(
            &task,
            q,
            batch(&task, vec![(VertexId(1), 3), (VertexId(1), 1)]),
        );
        let (active, msgs) = w.freeze(q);
        assert_eq!((active, msgs), (1, 2));
    }

    #[test]
    fn remote_batches_respect_the_wire_cap() {
        // 5 distinct remote destinations with a cap of 2 → ⌈5/2⌉ batches.
        let mut b = GraphBuilder::new(6);
        for t in 1..6 {
            b.add_edge(0, t, 1.0);
        }
        let g = Topology::new(b.build());
        let task = reach_task();
        let mut w = Worker::configured(0, true, 2);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        let prev = task.aggregate_identity();
        let (stats, _, remote) = w.execute(q, &task, &g, &prev, &|v| usize::from(v != VertexId(0)));
        assert_eq!(stats.remote_deliveries, 5);
        assert_eq!(stats.remote_batches, 3);
        assert_eq!(remote.len(), 1);
    }

    #[test]
    fn migration_roundtrip_preserves_state_and_inbox() {
        let g = line();
        let task = std::sync::Arc::new(reach_task());
        let q = QueryId(0);
        let mut a = Worker::new(0);
        a.deliver(task.as_ref(), q, batch(&task, vec![(VertexId(0), 0)]));
        a.freeze(q);
        let prev = task.aggregate_identity();
        a.execute(q, task.as_ref(), &g, &prev, &|_| 0);
        // Now vertex 0 has state, vertex 1 has a pending message.
        let moved: FxHashSet<VertexId> = [VertexId(0), VertexId(1)].into_iter().collect();
        let task_of = {
            let task = std::sync::Arc::clone(&task);
            move |_q: QueryId| task.clone() as std::sync::Arc<dyn QueryTask>
        };
        let data = a.extract_vertices(&task_of, &moved);
        assert_eq!(a.scope_size(q), 0);
        assert!(!a.has_pending(q));

        let mut b = Worker::new(1);
        b.inject_vertices(&task_of, data);
        assert_eq!(b.scope_size(q), 1);
        assert!(b.has_pending(q));
        assert_eq!(b.pending_counts(q), (1, 1));
    }

    #[test]
    fn extract_leaves_unmoved_pending_messages() {
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(
            &task,
            q,
            batch(&task, vec![(VertexId(1), 1), (VertexId(2), 2)]),
        );
        let moved: FxHashSet<VertexId> = [VertexId(1)].into_iter().collect();
        let task_of = {
            let task = std::sync::Arc::new(reach_task());
            move |_q: QueryId| task.clone() as std::sync::Arc<dyn QueryTask>
        };
        let data = w.extract_vertices(&task_of, &moved);
        assert_eq!(data.len(), 1);
        assert!(w.has_pending(q), "vertex 2's message stays");
        assert_eq!(w.pending_counts(q), (1, 1));
    }

    #[test]
    fn take_local_removes_query() {
        let g = line();
        let task = reach_task();
        let q = QueryId(0);
        let mut w = Worker::new(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        let prev = task.aggregate_identity();
        w.execute(q, &task, &g, &prev, &|_| 0);
        let local = w.take_local(q).expect("present");
        assert_eq!(local.scope_size(), 1);
        assert_eq!(w.scope_size(q), 0);
        assert_eq!(w.active_queries().count(), 0);
    }

    #[test]
    fn multiple_queries_of_mixed_types_are_isolated() {
        let g = line();
        let reach = reach_task();
        let ping = TypedTask::new(crate::programs::PingProgram {
            ring: vec![VertexId(2), VertexId(3)],
            rounds: 2,
        });
        let (q1, q2) = (QueryId(1), QueryId(2));
        let mut w = Worker::new(0);
        w.deliver(&reach, q1, batch(&reach, vec![(VertexId(0), 0)]));
        w.deliver(&ping, q2, ping.batch_for_test(vec![(VertexId(2), 0)]));
        w.freeze(q1);
        let prev = reach.aggregate_identity();
        w.execute(q1, &reach, &g, &prev, &|_| 0);
        assert_eq!(w.scope_size(q1), 1);
        assert_eq!(w.scope_size(q2), 0);
        assert!(w.has_pending(q2));

        w.freeze(q2);
        let prev = ping.aggregate_identity();
        let (stats, _, _) = w.execute(q2, &ping, &g, &prev, &|_| 0);
        assert_eq!(stats.executed, 1);
        assert_eq!(w.scope_size(q2), 1);
    }

    #[test]
    fn empty_freeze_is_harmless() {
        let mut w = Worker::new(0);
        assert_eq!(w.freeze(QueryId(0)), (0, 0));
    }

    #[test]
    fn scope_visitor_matches_materialized_set() {
        let g = line();
        let task = reach_task();
        let q = QueryId(0);
        let mut w = Worker::new(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        let prev = task.aggregate_identity();
        w.execute(q, &task, &g, &prev, &|_| 0);
        let mut visited = Vec::new();
        w.for_each_scope_vertex(q, &mut |v| visited.push(v));
        visited.sort_unstable();
        let mut materialized = w.scope_vertices(q);
        materialized.sort_unstable();
        assert_eq!(visited, materialized);
        // Unknown query: visitor is a no-op.
        w.for_each_scope_vertex(QueryId(9), &mut |_| panic!("no scope"));
    }

    #[test]
    #[should_panic(expected = "query task type mismatch")]
    fn wrong_task_type_panics_in_debug() {
        let task = reach_task();
        let ping = TypedTask::new(crate::programs::PingProgram {
            ring: vec![],
            rounds: 0,
        });
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        // Delivering a ping batch through the reach local must be caught.
        w.deliver(&ping, q, ping.batch_for_test(vec![(VertexId(0), 0)]));
    }
}
