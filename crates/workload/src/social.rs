//! Social-network generators for the paper's Application 2 (personalized
//! social-circle analytics): a Watts–Strogatz small-world graph (high
//! clustering coefficient, the property the paper cites for overlapping
//! social circles) and a Barabási–Albert preferential-attachment graph
//! (hub hotspots, "changing popularity of a star").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qgraph_graph::{Graph, GraphBuilder, RegionId, VertexProps};

/// Configuration for [`generate_ws`].
#[derive(Clone, Copy, Debug)]
pub struct WattsStrogatzConfig {
    /// Number of vertices.
    pub n: usize,
    /// Each vertex links to `k` nearest ring neighbours (`k` even).
    pub k: usize,
    /// Rewiring probability.
    pub beta: f64,
    /// Vertices per region label (communities for the Domain partitioner).
    pub region_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WattsStrogatzConfig {
    fn default() -> Self {
        WattsStrogatzConfig {
            n: 10_000,
            k: 8,
            beta: 0.05,
            region_size: 500,
            seed: 42,
        }
    }
}

/// Watts–Strogatz small-world graph. Undirected (both arcs stored), unit
/// weights; regions are contiguous ring chunks of `region_size` vertices.
pub fn generate_ws(cfg: WattsStrogatzConfig) -> Graph {
    assert!(
        cfg.k >= 2 && cfg.k.is_multiple_of(2),
        "k must be even and >= 2"
    );
    assert!(cfg.n > cfg.k, "n must exceed k");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * cfg.k);
    for v in 0..n {
        for j in 1..=cfg.k / 2 {
            let mut t = (v + j) % n;
            if rng.gen_bool(cfg.beta) {
                // Rewire to a uniform random non-self target.
                loop {
                    t = rng.gen_range(0..n);
                    if t != v {
                        break;
                    }
                }
            }
            b.add_undirected_edge(v as u32, t as u32, 1.0);
        }
    }
    b.set_props(VertexProps {
        regions: (0..n)
            .map(|v| RegionId((v / cfg.region_size.max(1)) as u32))
            .collect(),
        ..Default::default()
    });
    b.build()
}

/// Configuration for [`generate_ba`].
#[derive(Clone, Copy, Debug)]
pub struct BarabasiAlbertConfig {
    /// Number of vertices.
    pub n: usize,
    /// Edges added per new vertex.
    pub m: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BarabasiAlbertConfig {
    fn default() -> Self {
        BarabasiAlbertConfig {
            n: 10_000,
            m: 4,
            seed: 42,
        }
    }
}

/// Barabási–Albert preferential attachment. Undirected, unit weights.
/// Regions are assigned by attachment target of the vertex's first edge,
/// clustering vertices around the hub they joined.
pub fn generate_ba(cfg: BarabasiAlbertConfig) -> Graph {
    assert!(cfg.m >= 1 && cfg.n > cfg.m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * cfg.m);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * cfg.m);
    let mut first_target = vec![0u32; n];

    // Seed clique over the first m+1 vertices.
    for i in 0..=cfg.m {
        for j in 0..i {
            b.add_undirected_edge(i as u32, j as u32, 1.0);
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }
    #[allow(clippy::needless_range_loop)]
    for v in (cfg.m + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(cfg.m);
        while chosen.len() < cfg.m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as u32 && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        first_target[v] = chosen[0];
        for t in chosen {
            b.add_undirected_edge(v as u32, t, 1.0);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    // Region = representative hub: follow first-target pointers to a root
    // among the seed vertices.
    let regions = (0..n)
        .map(|v| {
            let mut x = v as u32;
            while x as usize > cfg.m {
                x = first_target[x as usize];
            }
            RegionId(x)
        })
        .collect();
    b.set_props(VertexProps {
        regions,
        ..Default::default()
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::validate;

    #[test]
    fn ws_counts_and_validity() {
        let g = generate_ws(WattsStrogatzConfig {
            n: 1000,
            k: 6,
            beta: 0.1,
            region_size: 100,
            seed: 1,
        });
        assert!(validate(&g).is_ok());
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 1000 * 6); // n * k/2 undirected = n*k arcs
        assert_eq!(g.props().num_regions(), 10);
    }

    #[test]
    fn ws_no_rewiring_is_a_ring_lattice() {
        let g = generate_ws(WattsStrogatzConfig {
            n: 100,
            k: 4,
            beta: 0.0,
            region_size: 10,
            seed: 1,
        });
        use qgraph_graph::VertexId;
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn ws_deterministic() {
        let cfg = WattsStrogatzConfig {
            n: 500,
            k: 4,
            beta: 0.3,
            region_size: 50,
            seed: 9,
        };
        let a: Vec<_> = generate_ws(cfg)
            .edges()
            .map(|(s, t, _)| (s.0, t.0))
            .collect();
        let b: Vec<_> = generate_ws(cfg)
            .edges()
            .map(|(s, t, _)| (s.0, t.0))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ba_power_law_hubs_exist() {
        let g = generate_ba(BarabasiAlbertConfig {
            n: 2000,
            m: 3,
            seed: 5,
        });
        assert!(validate(&g).is_ok());
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mean_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 5.0 * mean_deg,
            "expected hub: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn ba_every_late_vertex_has_m_out_links() {
        let m = 3;
        let g = generate_ba(BarabasiAlbertConfig { n: 500, m, seed: 2 });
        use qgraph_graph::VertexId;
        for v in (m + 1)..500 {
            assert!(g.degree(VertexId(v as u32)) >= m);
        }
    }

    #[test]
    fn ba_regions_cover_all_vertices() {
        let g = generate_ba(BarabasiAlbertConfig {
            n: 300,
            m: 2,
            seed: 3,
        });
        assert_eq!(g.props().regions.len(), 300);
        // All region roots are seed vertices (ids <= m).
        assert!(g.props().regions.iter().all(|r| r.0 <= 2));
    }
}
