//! The paper's second query type: point-of-interest search ("closest gas
//! station"). Tags vertices with the paper's probability scheme and runs
//! a batch of POI queries, verifying a few against the sequential
//! reference.
//!
//! ```text
//! cargo run --release -p qgraph-examples --bin poi_search
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;

use qgraph_algo::{nearest_tagged, PoiProgram};
use qgraph_core::{SimEngine, SystemConfig};
use qgraph_partition::{DomainPartitioner, Partitioner};
use qgraph_sim::ClusterModel;
use qgraph_workload::{
    assign_tags, QueryKind, RoadNetworkConfig, RoadNetworkGenerator, WorkloadConfig,
    WorkloadGenerator,
};

fn main() {
    let mut net = RoadNetworkGenerator::new(RoadNetworkConfig::bw_like(0.25, 9)).generate();
    let tagged = assign_tags(&mut net.graph, 1.0 / 200.0, 5);
    println!(
        "{} junctions, {} tagged as POI",
        net.graph.num_vertices(),
        tagged
    );

    let gen = WorkloadGenerator::new(&net);
    let specs = gen.generate(&WorkloadConfig::single(64, true, false, 3));
    let graph = Arc::new(net.graph.clone());
    let parts = DomainPartitioner.partition(&graph, 8);
    let mut engine = SimEngine::new(
        Arc::clone(&graph),
        ClusterModel::scale_up(8),
        parts,
        SystemConfig::default(),
    );
    let mut sources = Vec::new();
    let mut handles = Vec::new();
    for s in &specs {
        if let QueryKind::Poi { source } = s.kind {
            handles.push(engine.submit(PoiProgram::new(source)));
            sources.push(source);
        }
    }
    let report = engine.run();
    println!(
        "{} POI queries: mean latency {:.2} ms, locality {:.1}%",
        report.outcomes.len(),
        report.mean_latency() * 1e3,
        report.mean_locality() * 100.0
    );

    // Spot-check the first few answers against sequential Dijkstra.
    for (i, &src) in sources.iter().take(5).enumerate() {
        let got = engine.output(&handles[i]).unwrap();
        let want = nearest_tagged(&graph, src);
        let ok = match (got, &want) {
            (Some((_, gd)), Some((_, wd))) => (gd - wd).abs() < 1e-3,
            (None, None) => true,
            _ => false,
        };
        println!(
            "  from {src}: nearest POI {:?} — reference agrees: {ok}",
            got.map(|(v, d)| (v.0, d))
        );
        assert!(ok);
    }
}
