//! Hybrid barrier synchronization (paper §3.3).
//!
//! Q-Graph gives every query an independent barrier (avoiding the
//! straggler coupling of one shared barrier), *limits* it to the workers
//! actually involved in the query, and degenerates it to a free *local*
//! barrier when the query ran on a single worker and sent no remote
//! message. The traditional baseline ties each query's barrier to all
//! workers every iteration.
//!
//! This module computes, for one completed superstep of one query, when
//! the next superstep may start ([`decide`]); the timing model charges
//! one `barrierSynch` (worker → controller) and one `barrierReady`
//! (controller → worker) control message on the slowest involved path,
//! exactly the paper's API exchange.

use qgraph_sim::{ClusterModel, SimTime};

use crate::config::BarrierMode;

/// Everything known about a query's just-finished superstep.
#[derive(Clone, Debug)]
pub struct BarrierInput<'a> {
    /// Synchronization mode.
    pub mode: BarrierMode,
    /// Latest task completion among the involved workers.
    pub compute_done: SimTime,
    /// Latest arrival of any inter-worker message sent this superstep.
    pub msg_arrival: SimTime,
    /// Workers that executed this superstep.
    pub involved_cur: &'a [usize],
    /// Workers with pending messages for the next superstep.
    pub involved_next: &'a [usize],
    /// Whether any message crossed a worker boundary this superstep.
    pub crossed: bool,
    /// Charge an extra (non-piggybacked) stats message per iteration.
    pub stats_extra: bool,
}

/// The barrier's verdict for this iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierDecision {
    /// When the next superstep may start everywhere.
    pub release: SimTime,
    /// Whether this iteration counted as *completely local* — the
    /// numerator of the paper's query-locality metric.
    pub is_local: bool,
}

/// Compute the barrier release time for one query iteration.
pub fn decide(input: &BarrierInput<'_>, cluster: &ClusterModel) -> BarrierDecision {
    let is_local = input.involved_cur.len() <= 1 && !input.crossed;

    let max_ctl = |ws: &[usize]| -> SimTime {
        ws.iter()
            .map(|&w| cluster.control_cost_to_controller(w))
            .max()
            .unwrap_or(SimTime::ZERO)
    };

    let release = match input.mode {
        BarrierMode::Hybrid if is_local => {
            // Local query barrier: communication-free (paper §3.3 phase 2).
            input.compute_done
        }
        BarrierMode::Hybrid => {
            // Limited query barrier: barrierSynch from the involved workers,
            // barrierReady to the workers involved now or next.
            let up = max_ctl(input.involved_cur);
            let down = max_ctl(input.involved_cur).max(max_ctl(input.involved_next));
            let extra = if input.stats_extra { up } else { SimTime::ZERO };
            (input.compute_done + up + down + extra).max(input.msg_arrival)
        }
        BarrierMode::GlobalPerQuery | BarrierMode::SharedGlobal => {
            // Every query synchronizes across *all* workers each iteration,
            // local or not. (For SharedGlobal the engine additionally
            // couples all queries' releases to the slowest one.)
            let all: Vec<usize> = (0..cluster.num_workers).collect();
            let rt = max_ctl(&all);
            let extra = if input.stats_extra { rt } else { SimTime::ZERO };
            (input.compute_done + rt + rt + extra).max(input.msg_arrival)
        }
    };

    BarrierDecision { release, is_local }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c1() -> ClusterModel {
        ClusterModel::scale_out(4, 4)
    }

    fn base_input<'a>(cur: &'a [usize], next: &'a [usize], crossed: bool) -> BarrierInput<'a> {
        BarrierInput {
            mode: BarrierMode::Hybrid,
            compute_done: SimTime::from_millis(10),
            msg_arrival: SimTime::from_millis(11),
            involved_cur: cur,
            involved_next: next,
            crossed,
            stats_extra: false,
        }
    }

    #[test]
    fn local_barrier_is_free() {
        let d = decide(&base_input(&[2], &[2], false), &c1());
        assert!(d.is_local);
        assert_eq!(d.release, SimTime::from_millis(10));
    }

    #[test]
    fn limited_barrier_pays_control_round_trip() {
        let cluster = c1();
        let d = decide(&base_input(&[1, 2], &[1, 2], true), &cluster);
        assert!(!d.is_local);
        assert!(d.release > SimTime::from_millis(10));
    }

    #[test]
    fn global_costs_at_least_as_much_as_limited() {
        let cluster = c1();
        let cur = [1usize, 2];
        let next = [1usize, 2];
        let mut input = base_input(&cur, &next, true);
        let hybrid = decide(&input, &cluster);
        input.mode = BarrierMode::GlobalPerQuery;
        let global = decide(&input, &cluster);
        assert!(global.release >= hybrid.release);
    }

    #[test]
    fn global_mode_charges_even_local_queries() {
        let cluster = c1();
        let cur = [2usize];
        let next = [2usize];
        let mut input = base_input(&cur, &next, false);
        input.mode = BarrierMode::GlobalPerQuery;
        let d = decide(&input, &cluster);
        assert!(d.is_local, "locality metric is mode-independent");
        assert!(
            d.release > SimTime::from_millis(10),
            "but the baseline still pays the global round trip"
        );
    }

    #[test]
    fn release_waits_for_message_arrival() {
        let cluster = c1();
        let cur = [0usize, 1];
        let next = [1usize];
        let mut input = base_input(&cur, &next, true);
        input.msg_arrival = SimTime::from_secs(5);
        let d = decide(&input, &cluster);
        assert!(d.release >= SimTime::from_secs(5));
    }

    #[test]
    fn crossing_messages_break_locality_even_on_one_worker() {
        // A single involved worker that sent a remote message is not local:
        // a distant vertex was activated (paper §3.3).
        let d = decide(&base_input(&[0], &[0, 1], true), &c1());
        assert!(!d.is_local);
    }

    #[test]
    fn stats_extra_adds_cost() {
        let cluster = c1();
        let cur = [0usize, 1];
        let next = [1usize];
        let mut input = base_input(&cur, &next, true);
        input.msg_arrival = SimTime::ZERO; // let the control path dominate
        let without = decide(&input, &cluster);
        input.stats_extra = true;
        let with = decide(&input, &cluster);
        assert!(with.release > without.release);
    }
}
