//! Worker-side query execution (paper §3.1, "low-level vertex-centric,
//! local knowledge").
//!
//! A [`Worker`] owns, for every query it participates in, a sparse
//! [`QueryLocal`]: the query-specific vertex data of the vertices the query
//! activated here (its local scope `LS(q,w)`), plus double-buffered message
//! inboxes. Sparse storage is essential for the multi-query model — dense
//! per-query arrays would cost `O(|V| · |Q|)` memory while localized
//! queries touch a tiny graph fraction.
//!
//! Workers are runtime-agnostic: both the discrete-event engine and the
//! thread runtime drive the same code, passing a routing closure that
//! resolves the current vertex→worker assignment.

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{Graph, VertexId};

use crate::program::{Context, VertexProgram};
use crate::QueryId;

/// Per-query, per-worker execution state.
pub struct QueryLocal<P: VertexProgram> {
    /// Frozen inbox of the running superstep, sorted by vertex id for
    /// deterministic execution order.
    cur: Vec<(VertexId, Vec<P::Message>)>,
    /// Inbox accumulating messages for the next superstep.
    next: FxHashMap<VertexId, Vec<P::Message>>,
    /// Query-specific vertex data `D_v` for activated vertices.
    state: FxHashMap<VertexId, P::State>,
}

impl<P: VertexProgram> Default for QueryLocal<P> {
    fn default() -> Self {
        QueryLocal {
            cur: Vec::new(),
            next: FxHashMap::default(),
            state: FxHashMap::default(),
        }
    }
}

/// Counters reported after one local superstep; the sizes in it are what
/// the worker piggybacks to the controller as `stats(q, |LS(q,w)|, I_w, w)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Vertex functions executed.
    pub executed: usize,
    /// Messages consumed.
    pub messages_in: usize,
    /// Messages that stayed on this worker.
    pub local_deliveries: usize,
    /// Messages destined for other workers.
    pub remote_deliveries: usize,
    /// `|LS(q,w)|` after the step.
    pub local_scope: usize,
}

/// One worker: the container of all queries' local state on this partition.
pub struct Worker<P: VertexProgram> {
    /// This worker's id (index into the cluster).
    pub id: usize,
    queries: FxHashMap<QueryId, QueryLocal<P>>,
}

impl<P: VertexProgram> Worker<P> {
    /// An empty worker.
    pub fn new(id: usize) -> Self {
        Worker {
            id,
            queries: FxHashMap::default(),
        }
    }

    /// Deliver messages into query `q`'s next-superstep inbox.
    pub fn deliver(&mut self, q: QueryId, msgs: impl IntoIterator<Item = (VertexId, P::Message)>) {
        let local = self.queries.entry(q).or_default();
        for (v, m) in msgs {
            local.next.entry(v).or_default().push(m);
        }
    }

    /// Does query `q` have pending messages for a next superstep here?
    pub fn has_pending(&self, q: QueryId) -> bool {
        self.queries.get(&q).is_some_and(|l| !l.next.is_empty())
    }

    /// `(active vertices, messages)` pending for query `q`'s next superstep.
    pub fn pending_counts(&self, q: QueryId) -> (usize, usize) {
        match self.queries.get(&q) {
            None => (0, 0),
            Some(l) => (l.next.len(), l.next.values().map(Vec::len).sum()),
        }
    }

    /// Freeze the pending inbox as the current superstep's input; returns
    /// `(active vertices, messages)` for the cost model.
    ///
    /// Called at *barrier release* (not task start): all involved workers
    /// freeze at the same instant, so messages produced by another
    /// worker's in-flight superstep can never leak into this one — the
    /// BSP isolation that makes iteration counts partition-independent.
    pub fn freeze(&mut self, q: QueryId) -> (usize, usize) {
        let local = self.queries.entry(q).or_default();
        debug_assert!(local.cur.is_empty(), "freeze with unexecuted frozen inbox");
        local.cur = local.next.drain().collect();
        local.cur.sort_unstable_by_key(|(v, _)| *v);
        let msgs = local.cur.iter().map(|(_, m)| m.len()).sum();
        (local.cur.len(), msgs)
    }

    /// `(active vertices, messages)` of the already-frozen superstep input.
    pub fn frozen_counts(&self, q: QueryId) -> (usize, usize) {
        match self.queries.get(&q) {
            None => (0, 0),
            Some(l) => (l.cur.len(), l.cur.iter().map(|(_, m)| m.len()).sum()),
        }
    }

    /// Execute the frozen superstep of query `q`.
    ///
    /// `route` resolves the *current* assignment; messages to this worker
    /// go straight into the next inbox, others are returned bucketed by
    /// destination worker.
    #[allow(clippy::type_complexity)]
    pub fn execute(
        &mut self,
        q: QueryId,
        graph: &Graph,
        program: &P,
        prev_aggregate: &P::Aggregate,
        route: &dyn Fn(VertexId) -> usize,
    ) -> (
        SuperstepStats,
        P::Aggregate,
        Vec<(usize, Vec<(VertexId, P::Message)>)>,
    ) {
        let local = self.queries.entry(q).or_default();
        let mut stats = SuperstepStats::default();
        let mut aggregate = program.aggregate_identity();
        let mut outgoing: Vec<(VertexId, P::Message)> = Vec::new();
        let combine = |a: &mut P::Aggregate, b: &P::Aggregate| program.aggregate_combine(a, b);

        let cur = std::mem::take(&mut local.cur);
        for (v, msgs) in &cur {
            let state = local
                .state
                .entry(*v)
                .or_insert_with(|| program.init_state());
            let mut ctx = Context {
                outgoing: &mut outgoing,
                aggregate: &mut aggregate,
                prev_aggregate,
                combine: &combine,
            };
            program.compute(graph, *v, state, msgs, &mut ctx);
            stats.executed += 1;
            stats.messages_in += msgs.len();
        }

        // Route produced messages.
        let mut buckets: FxHashMap<usize, Vec<(VertexId, P::Message)>> = FxHashMap::default();
        for (to, msg) in outgoing {
            let w = route(to);
            if w == self.id {
                local.next.entry(to).or_default().push(msg);
                stats.local_deliveries += 1;
            } else {
                buckets.entry(w).or_default().push((to, msg));
                stats.remote_deliveries += 1;
            }
        }
        stats.local_scope = local.state.len();
        let mut remote: Vec<_> = buckets.into_iter().collect();
        remote.sort_unstable_by_key(|(w, _)| *w); // deterministic order
        (stats, aggregate, remote)
    }

    /// `|LS(q,w)|`: vertices query `q` has activated on this worker.
    pub fn scope_size(&self, q: QueryId) -> usize {
        self.queries.get(&q).map_or(0, |l| l.state.len())
    }

    /// The live local scope vertex set of query `q`.
    pub fn scope_vertices(&self, q: QueryId) -> Vec<VertexId> {
        self.queries
            .get(&q)
            .map(|l| l.state.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Queries with state on this worker.
    pub fn active_queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// Remove query `q` entirely, returning its vertex states (for
    /// [`VertexProgram::finalize`]).
    pub fn take_states(&mut self, q: QueryId) -> FxHashMap<VertexId, P::State> {
        self.queries.remove(&q).map(|l| l.state).unwrap_or_default()
    }

    /// Extract all per-query data of the given vertices, for migration to
    /// another worker during a global barrier. The frozen inbox must be
    /// empty (no superstep in flight), which the engine guarantees by
    /// quiescing workers first.
    #[allow(clippy::type_complexity)]
    pub fn extract_vertices(
        &mut self,
        vertices: &FxHashSet<VertexId>,
    ) -> Vec<(QueryId, Vec<(VertexId, Option<P::State>, Vec<P::Message>)>)> {
        let mut out = Vec::new();
        for (&q, local) in self.queries.iter_mut() {
            debug_assert!(local.cur.is_empty(), "migration during a running superstep");
            let mut entries = Vec::new();
            let touched: Vec<VertexId> = local
                .state
                .keys()
                .chain(local.next.keys())
                .filter(|v| vertices.contains(v))
                .copied()
                .collect::<FxHashSet<_>>()
                .into_iter()
                .collect();
            for v in touched {
                let st = local.state.remove(&v);
                let msgs = local.next.remove(&v).unwrap_or_default();
                entries.push((v, st, msgs));
            }
            if !entries.is_empty() {
                entries.sort_unstable_by_key(|(v, _, _)| *v);
                out.push((q, entries));
            }
        }
        out.sort_unstable_by_key(|(q, _)| *q);
        out
    }

    /// Inject migrated vertex data (the counterpart of
    /// [`Worker::extract_vertices`]).
    #[allow(clippy::type_complexity)]
    pub fn inject_vertices(
        &mut self,
        data: Vec<(QueryId, Vec<(VertexId, Option<P::State>, Vec<P::Message>)>)>,
    ) {
        for (q, entries) in data {
            let local = self.queries.entry(q).or_default();
            for (v, st, msgs) in entries {
                if let Some(st) = st {
                    local.state.insert(v, st);
                }
                if !msgs.is_empty() {
                    local.next.entry(v).or_default().extend(msgs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::ReachProgram;
    use qgraph_graph::GraphBuilder;

    fn line() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.build()
    }

    #[test]
    fn deliver_freeze_execute_cycle() {
        let g = line();
        let p = ReachProgram::new(VertexId(0));
        let mut w: Worker<ReachProgram> = Worker::new(0);
        let q = QueryId(0);
        w.deliver(q, vec![(VertexId(0), 0)]);
        assert!(w.has_pending(q));
        assert_eq!(w.pending_counts(q), (1, 1));

        let (active, msgs) = w.freeze(q);
        assert_eq!((active, msgs), (1, 1));
        let (stats, _agg, remote) = w.execute(q, &g, &p, &(), &|_| 0);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.local_deliveries, 1); // 0 -> 1 stays local
        assert!(remote.is_empty());
        assert_eq!(w.scope_size(q), 1);
        assert!(w.has_pending(q)); // vertex 1 activated
    }

    #[test]
    fn remote_messages_bucketed_by_destination() {
        let g = line();
        let p = ReachProgram::new(VertexId(0));
        let mut w: Worker<ReachProgram> = Worker::new(0);
        let q = QueryId(0);
        w.deliver(q, vec![(VertexId(0), 0)]);
        w.freeze(q);
        // Route everything except vertex 0 to worker 1.
        let (stats, _, remote) = w.execute(q, &g, &p, &(), &|v| usize::from(v != VertexId(0)));
        assert_eq!(stats.remote_deliveries, 1);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].0, 1);
        assert_eq!(remote[0].1, vec![(VertexId(1), 1)]);
        assert!(!w.has_pending(q));
    }

    #[test]
    fn migration_roundtrip_preserves_state_and_inbox() {
        let g = line();
        let p = ReachProgram::new(VertexId(0));
        let q = QueryId(0);
        let mut a: Worker<ReachProgram> = Worker::new(0);
        a.deliver(q, vec![(VertexId(0), 0)]);
        a.freeze(q);
        a.execute(q, &g, &p, &(), &|_| 0);
        // Now vertex 0 has state, vertex 1 has a pending message.
        let moved: FxHashSet<VertexId> = [VertexId(0), VertexId(1)].into_iter().collect();
        let data = a.extract_vertices(&moved);
        assert_eq!(a.scope_size(q), 0);
        assert!(!a.has_pending(q));

        let mut b: Worker<ReachProgram> = Worker::new(1);
        b.inject_vertices(data);
        assert_eq!(b.scope_size(q), 1);
        assert!(b.has_pending(q));
        assert_eq!(b.pending_counts(q), (1, 1));
    }

    #[test]
    fn take_states_removes_query() {
        let g = line();
        let p = ReachProgram::new(VertexId(0));
        let q = QueryId(0);
        let mut w: Worker<ReachProgram> = Worker::new(0);
        w.deliver(q, vec![(VertexId(0), 0)]);
        w.freeze(q);
        w.execute(q, &g, &p, &(), &|_| 0);
        let states = w.take_states(q);
        assert_eq!(states.len(), 1);
        assert_eq!(w.scope_size(q), 0);
        assert_eq!(w.active_queries().count(), 0);
    }

    #[test]
    fn multiple_queries_are_isolated() {
        let g = line();
        let p = ReachProgram::new(VertexId(0));
        let (q1, q2) = (QueryId(1), QueryId(2));
        let mut w: Worker<ReachProgram> = Worker::new(0);
        w.deliver(q1, vec![(VertexId(0), 0)]);
        w.deliver(q2, vec![(VertexId(2), 0)]);
        w.freeze(q1);
        w.execute(q1, &g, &p, &(), &|_| 0);
        assert_eq!(w.scope_size(q1), 1);
        assert_eq!(w.scope_size(q2), 0);
        assert!(w.has_pending(q2));
    }

    #[test]
    fn empty_freeze_is_harmless() {
        let mut w: Worker<ReachProgram> = Worker::new(0);
        assert_eq!(w.freeze(QueryId(0)), (0, 0));
    }
}
