//! Graph mutations: the unit of change of the evolving-graph plane.
//!
//! A [`MutationBatch`] is an ordered list of [`GraphMutation`] ops applied
//! atomically at an engine epoch barrier (see `qgraph-core`'s mutation
//! plane). Batches are plain data — generators build them against a known
//! graph state, engines apply them through [`crate::Topology::apply`].

/// One topology change. Ops within a batch apply strictly in order, so a
/// later op may reference a vertex an earlier [`GraphMutation::AddVertex`]
/// created (ids are assigned densely from the current vertex count, in op
/// order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphMutation {
    /// Append one vertex; its id is the vertex count at the moment the op
    /// applies. New vertices carry default properties (untagged, no
    /// coordinates).
    AddVertex,
    /// Remove every edge incident to the vertex (in- and out-). The id
    /// itself stays valid — dense ids are never reused — so the vertex
    /// survives as an isolated node and may be reconnected later.
    RemoveVertex(crate::VertexId),
    /// Add a directed edge `from -> to` with weight `w`.
    AddEdge {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
        /// Edge weight (travel time in the road workloads).
        weight: f32,
    },
    /// Remove every live `from -> to` edge (parallel edges included).
    /// Removing a non-existent edge is a no-op.
    RemoveEdge {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
    },
    /// Set the weight of every live `from -> to` edge. A no-op when the
    /// edge does not exist.
    SetWeight {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
        /// The new weight.
        weight: f32,
    },
}

/// An ordered group of mutations applied atomically at one epoch barrier:
/// queries never observe a half-applied batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    ops: Vec<GraphMutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[GraphMutation] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append a raw op.
    pub fn push(&mut self, op: GraphMutation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Append one new vertex (see [`GraphMutation::AddVertex`] for id
    /// assignment).
    pub fn add_vertex(&mut self) -> &mut Self {
        self.push(GraphMutation::AddVertex)
    }

    /// Disconnect `v` (see [`GraphMutation::RemoveVertex`]).
    pub fn remove_vertex(&mut self, v: u32) -> &mut Self {
        self.push(GraphMutation::RemoveVertex(crate::VertexId(v)))
    }

    /// Add a directed edge.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: f32) -> &mut Self {
        self.push(GraphMutation::AddEdge {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
            weight,
        })
    }

    /// Add both directions of a road segment.
    pub fn add_undirected_edge(&mut self, a: u32, b: u32, weight: f32) -> &mut Self {
        self.add_edge(a, b, weight).add_edge(b, a, weight)
    }

    /// Remove a directed edge.
    pub fn remove_edge(&mut self, from: u32, to: u32) -> &mut Self {
        self.push(GraphMutation::RemoveEdge {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
        })
    }

    /// Remove both directions of a road segment.
    pub fn remove_undirected_edge(&mut self, a: u32, b: u32) -> &mut Self {
        self.remove_edge(a, b).remove_edge(b, a)
    }

    /// Re-weight a directed edge.
    pub fn set_weight(&mut self, from: u32, to: u32, weight: f32) -> &mut Self {
        self.push(GraphMutation::SetWeight {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
            weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn builder_collects_ops_in_order() {
        let mut b = MutationBatch::new();
        b.add_vertex().add_edge(0, 1, 2.0).remove_edge(1, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops()[0], GraphMutation::AddVertex);
        assert_eq!(
            b.ops()[2],
            GraphMutation::RemoveEdge {
                from: VertexId(1),
                to: VertexId(0)
            }
        );
    }

    #[test]
    fn undirected_helpers_emit_both_directions() {
        let mut b = MutationBatch::new();
        b.add_undirected_edge(2, 3, 1.5);
        b.remove_undirected_edge(2, 3);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(MutationBatch::new().is_empty());
    }
}
