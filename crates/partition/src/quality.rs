//! Partitioning quality metrics: the classic edge-cut, the paper's
//! query-cut (§2), balance, and query locality.

use qgraph_graph::{Graph, VertexId};

use crate::Partitioning;

/// Number of directed edges whose endpoints live on different workers — the
/// objective of query-*agnostic* edge-cut partitioning that Figure 1 shows
/// to be the wrong objective for CGA applications.
pub fn edge_cut(graph: &Graph, p: &Partitioning) -> usize {
    graph
        .edges()
        .filter(|&(s, t, _)| p.worker_of(s) != p.worker_of(t))
        .count()
}

/// Relative imbalance of per-worker loads: `max(load)/mean(load) - 1`.
/// Zero for perfect balance; the paper allows δ = 0.25.
pub fn imbalance(loads: &[usize]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / mean - 1.0
}

/// The paper's **query-cut** metric: `Σ_q |{w : LS(q,w) ≠ ∅}|`, i.e. for
/// each query the number of workers holding at least one of its scope
/// vertices. A fully local query contributes 1.
///
/// `scopes` holds each query's *global* scope `GS(q)` as a vertex list.
pub fn query_cut(scopes: &[Vec<VertexId>], p: &Partitioning) -> usize {
    let mut total = 0usize;
    let mut touched = vec![false; p.num_workers()];
    for scope in scopes {
        for t in touched.iter_mut() {
            *t = false;
        }
        for &v in scope {
            touched[p.worker_of(v).index()] = true;
        }
        total += touched.iter().filter(|&&t| t).count();
    }
    total
}

/// Fraction of queries that are *completely local* (scope on one worker).
pub fn locality_fraction(scopes: &[Vec<VertexId>], p: &Partitioning) -> f64 {
    if scopes.is_empty() {
        return 1.0;
    }
    let local = scopes
        .iter()
        .filter(|scope| {
            let mut it = scope.iter();
            match it.next() {
                None => true,
                Some(&first) => {
                    let w = p.worker_of(first);
                    it.all(|&v| p.worker_of(v) == w)
                }
            }
        })
        .count();
    local as f64 / scopes.len() as f64
}

/// A quality snapshot bundling the individual metrics, used in reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Directed edge-cut.
    pub edge_cut: usize,
    /// Query-cut over the supplied scopes.
    pub query_cut: usize,
    /// Vertex-count imbalance.
    pub imbalance: f64,
    /// Fraction of fully-local queries.
    pub locality: f64,
}

impl PartitionQuality {
    /// Measure all metrics at once.
    pub fn measure(graph: &Graph, p: &Partitioning, scopes: &[Vec<VertexId>]) -> Self {
        PartitionQuality {
            edge_cut: edge_cut(graph, p),
            query_cut: query_cut(scopes, p),
            imbalance: imbalance(&p.sizes()),
            locality: locality_fraction(scopes, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerId;
    use qgraph_graph::GraphBuilder;

    fn path4() -> Graph {
        // 0 - 1 - 2 - 3 (undirected)
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1, 1.0);
        b.add_undirected_edge(1, 2, 1.0);
        b.add_undirected_edge(2, 3, 1.0);
        b.build()
    }

    fn split_at_middle() -> Partitioning {
        Partitioning::new(vec![WorkerId(0), WorkerId(0), WorkerId(1), WorkerId(1)], 2)
    }

    #[test]
    fn edge_cut_counts_directed_crossings() {
        let g = path4();
        // Only 1<->2 crosses: 2 directed edges.
        assert_eq!(edge_cut(&g, &split_at_middle()), 2);
    }

    #[test]
    fn imbalance_zero_when_equal() {
        assert_eq!(imbalance(&[5, 5, 5]), 0.0);
        assert!((imbalance(&[10, 5, 0]) - 1.0).abs() < 1e-12); // max 10, mean 5
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
    }

    #[test]
    fn query_cut_counts_nonempty_local_scopes() {
        let p = split_at_middle();
        let scopes = vec![
            vec![VertexId(0), VertexId(1)], // local on w0 -> 1
            vec![VertexId(1), VertexId(2)], // spans both  -> 2
            vec![VertexId(3)],              // local on w1 -> 1
        ];
        assert_eq!(query_cut(&scopes, &p), 4);
    }

    #[test]
    fn locality_fraction_counts_fully_local() {
        let p = split_at_middle();
        let scopes = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(1), VertexId(2)],
        ];
        assert_eq!(locality_fraction(&scopes, &p), 0.5);
        assert_eq!(locality_fraction(&[], &p), 1.0);
        assert_eq!(locality_fraction(&[vec![]], &p), 1.0);
    }

    #[test]
    fn figure1_style_example() {
        // The Figure 1 narrative: a cut separating the two query regions has
        // query-cut 2 (each query local) even if its edge-cut is larger.
        let g = path4();
        let p = split_at_middle();
        let q = PartitionQuality::measure(
            &g,
            &p,
            &[
                vec![VertexId(0), VertexId(1)],
                vec![VertexId(2), VertexId(3)],
            ],
        );
        assert_eq!(q.query_cut, 2);
        assert_eq!(q.locality, 1.0);
        assert_eq!(q.edge_cut, 2);
        assert_eq!(q.imbalance, 0.0);
    }
}
