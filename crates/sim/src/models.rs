//! Cost models for compute, network, and the combined cluster presets.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Per-worker computation cost model.
///
/// The engine charges `vertex_update` for every executed vertex function and
/// `message_apply` for every incoming message folded into a vertex's state.
/// Defaults are in the ballpark of a JVM vertex-centric engine (the paper's
/// implementation is 25k lines of Java); only their *ratio* to the network
/// constants matters for the reproduced shapes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Cost of one vertex-function execution, in nanoseconds.
    pub vertex_update_ns: u64,
    /// Cost of applying one incoming message, in nanoseconds.
    pub message_apply_ns: u64,
    /// Fixed per-superstep scheduling overhead on a worker, in nanoseconds.
    pub superstep_overhead_ns: u64,
    /// Cost of applying one graph-mutation op to the topology overlay, in
    /// nanoseconds (hash-map insert + bookkeeping; charged inside the
    /// mutation epoch barrier).
    pub mutation_apply_ns: u64,
    /// Per-edge cost of rebuilding the CSR when the overlay compacts, in
    /// nanoseconds (a counting sort pass over the live edges).
    pub compact_ns_per_edge: u64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            vertex_update_ns: 1_500,
            message_apply_ns: 300,
            superstep_overhead_ns: 5_000,
            mutation_apply_ns: 800,
            compact_ns_per_edge: 40,
        }
    }
}

impl ComputeModel {
    /// Compute time for a superstep executing `vertices` vertex functions
    /// over `messages` delivered messages.
    pub fn superstep_cost(&self, vertices: usize, messages: usize) -> SimTime {
        SimTime(
            self.superstep_overhead_ns
                + self.vertex_update_ns * vertices as u64
                + self.message_apply_ns * messages as u64,
        )
    }

    /// Time to apply a mutation batch of `ops` ops at the epoch barrier.
    pub fn mutation_cost(&self, ops: usize) -> SimTime {
        SimTime(self.mutation_apply_ns * ops as u64)
    }

    /// Time to compact an overlay into a fresh CSR of `edges` live edges.
    pub fn compaction_cost(&self, edges: usize) -> SimTime {
        SimTime(self.compact_ns_per_edge * edges as u64)
    }
}

/// Network cost model for messages between workers and worker↔controller
/// control traffic.
///
/// A transfer of `bytes` between *distinct* workers costs
/// `latency + bytes / bandwidth + serialization`; transfers between
/// co-located partitions use the loopback constants (the paper's scale-up
/// machines run k partitions over loopback TCP). Messages from a worker to
/// itself are free — that is precisely the locality the paper exploits.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way latency between distinct hosts, in nanoseconds.
    pub remote_latency_ns: u64,
    /// Bandwidth between distinct hosts, bytes/second.
    pub remote_bandwidth_bps: u64,
    /// One-way latency between partitions on the same host (loopback TCP).
    pub loopback_latency_ns: u64,
    /// Loopback bandwidth, bytes/second.
    pub loopback_bandwidth_bps: u64,
    /// Per-message serialization + deserialization cost, in nanoseconds.
    pub serialize_ns_per_msg: u64,
    /// Encoded size of one vertex message, in bytes.
    pub bytes_per_msg: u64,
    /// Maximum messages per batch (the paper: 32 messages / 32 KiB).
    pub batch_max_msgs: usize,
    /// Fixed protocol overhead per batch, in bytes.
    pub batch_overhead_bytes: u64,
}

impl NetworkModel {
    /// Loopback-TCP preset: every worker is a partition of one multi-core
    /// machine (the paper's M1/M2 scale-up setup). The serialization
    /// constant reflects the paper's JVM implementation — Java object
    /// (de)serialization plus the "multi-layered TCP/IP stack through the
    /// operating system" it calls out in §2 — which is what makes remote
    /// messages expensive even over loopback.
    pub fn loopback() -> Self {
        NetworkModel {
            remote_latency_ns: 25_000, // same constants: "remote" == loopback here
            remote_bandwidth_bps: 8_000_000_000,
            loopback_latency_ns: 25_000,
            loopback_bandwidth_bps: 8_000_000_000,
            serialize_ns_per_msg: 4_000,
            bytes_per_msg: 24,
            batch_max_msgs: 32,
            batch_overhead_bytes: 66,
        }
    }

    /// 1-Gigabit-Ethernet preset (the paper's C1 cluster).
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            remote_latency_ns: 180_000,
            remote_bandwidth_bps: 117_000_000, // ~1 GbE payload rate
            loopback_latency_ns: 25_000,
            loopback_bandwidth_bps: 8_000_000_000,
            serialize_ns_per_msg: 4_000,
            bytes_per_msg: 24,
            batch_max_msgs: 32,
            batch_overhead_bytes: 66,
        }
    }

    /// Wire time of `msgs` vertex messages between two workers that are
    /// on different hosts (`remote = true`) or co-located (`false`).
    /// Batching amortizes latency: ceil(msgs / batch_max) round trips.
    /// Sender-side CPU is *not* included — charge it separately via
    /// [`NetworkModel::serialize_cost`], it occupies the worker.
    pub fn transfer_cost(&self, msgs: usize, remote: bool) -> SimTime {
        if msgs == 0 {
            return SimTime::ZERO;
        }
        let (lat, bw) = if remote {
            (self.remote_latency_ns, self.remote_bandwidth_bps)
        } else {
            (self.loopback_latency_ns, self.loopback_bandwidth_bps)
        };
        let batches = msgs.div_ceil(self.batch_max_msgs) as u64;
        let bytes = self.bytes_per_msg * msgs as u64 + self.batch_overhead_bytes * batches;
        let wire_ns = bytes.saturating_mul(1_000_000_000) / bw.max(1);
        SimTime(lat + wire_ns)
    }

    /// Sender-side CPU time to serialize `msgs` messages and push them
    /// through the socket layer. This time *occupies the worker* — the
    /// engine keeps the worker busy for it — which is how communication
    /// volume erodes a query-agnostic partitioning's throughput (paper §2:
    /// "overhead for serializing and deserializing messages, ... passing
    /// the multi-layered TCP/IP stack through the operating system").
    pub fn serialize_cost(&self, msgs: usize) -> SimTime {
        SimTime(self.serialize_ns_per_msg * msgs as u64)
    }

    /// Cost of one small control message (barrier / stats), one way.
    pub fn control_cost(&self, remote: bool) -> SimTime {
        self.transfer_cost(1, remote)
    }

    /// Cost of bulk-moving `vertices` vertices' state (repartitioning). Each
    /// vertex moves its query state, modelled as `state_bytes` per vertex.
    pub fn bulk_move_cost(&self, vertices: usize, state_bytes: u64, remote: bool) -> SimTime {
        if vertices == 0 {
            return SimTime::ZERO;
        }
        let (lat, bw) = if remote {
            (self.remote_latency_ns, self.remote_bandwidth_bps)
        } else {
            (self.loopback_latency_ns, self.loopback_bandwidth_bps)
        };
        let bytes = state_bytes * vertices as u64;
        SimTime(lat + bytes.saturating_mul(1_000_000_000) / bw.max(1))
    }
}

/// A complete simulated infrastructure: worker count, host mapping, and the
/// two cost models. Mirrors the paper's M1 / M2 / C1 testbeds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Number of workers (graph partitions).
    pub num_workers: usize,
    /// Host index of each worker; workers on the same host communicate over
    /// loopback, others over the remote link.
    pub host_of_worker: Vec<usize>,
    /// Network cost model.
    pub network: NetworkModel,
    /// Compute cost model.
    pub compute: ComputeModel,
}

impl ClusterModel {
    /// Scale-up preset M1/M2: `k` workers on one multi-core host, loopback TCP.
    pub fn scale_up(k: usize) -> Self {
        ClusterModel {
            num_workers: k,
            host_of_worker: vec![0; k],
            network: NetworkModel::loopback(),
            compute: ComputeModel::default(),
        }
    }

    /// Scale-out preset C1: `k` workers spread round-robin over `hosts`
    /// machines connected by gigabit Ethernet.
    pub fn scale_out(k: usize, hosts: usize) -> Self {
        assert!(hosts >= 1, "need at least one host");
        ClusterModel {
            num_workers: k,
            host_of_worker: (0..k).map(|w| w % hosts).collect(),
            network: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::default(),
        }
    }

    /// The paper's C1: one worker per node, up to 8 nodes; beyond 8 workers
    /// they share nodes.
    pub fn c1(k: usize) -> Self {
        Self::scale_out(k, k.min(8))
    }

    /// Are two workers on different hosts?
    #[inline]
    pub fn is_remote(&self, a: usize, b: usize) -> bool {
        self.host_of_worker[a] != self.host_of_worker[b]
    }

    /// Transfer cost of `msgs` messages from worker `a` to worker `b`
    /// (zero if `a == b`).
    pub fn message_cost(&self, a: usize, b: usize, msgs: usize) -> SimTime {
        if a == b {
            SimTime::ZERO
        } else {
            self.network.transfer_cost(msgs, self.is_remote(a, b))
        }
    }

    /// One-way control-message cost between a worker and the controller.
    /// The controller runs on host 0.
    pub fn control_cost_to_controller(&self, w: usize) -> SimTime {
        self.network.control_cost(self.host_of_worker[w] != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_messages_are_free() {
        let c = ClusterModel::scale_up(4);
        assert_eq!(c.message_cost(2, 2, 1000), SimTime::ZERO);
    }

    #[test]
    fn remote_costs_more_than_loopback() {
        let c = ClusterModel::scale_out(4, 4);
        let remote = c.message_cost(0, 1, 100);
        let cl = ClusterModel::scale_up(4);
        let loopback = cl.message_cost(0, 1, 100);
        assert!(remote > loopback, "{remote:?} vs {loopback:?}");
    }

    #[test]
    fn transfer_cost_grows_with_messages() {
        let n = NetworkModel::gigabit_ethernet();
        let one = n.transfer_cost(1, true);
        let many = n.transfer_cost(10_000, true);
        assert!(many > one);
        assert_eq!(n.transfer_cost(0, true), SimTime::ZERO);
    }

    #[test]
    fn batching_amortizes_latency_sublinearly() {
        let n = NetworkModel::gigabit_ethernet();
        let c32 = n.transfer_cost(32, true).as_nanos();
        let c1 = n.transfer_cost(1, true).as_nanos();
        assert!(c32 < 32 * c1, "batched 32 msgs should be < 32x single");
    }

    #[test]
    fn scale_out_host_mapping_round_robin() {
        let c = ClusterModel::scale_out(6, 3);
        assert_eq!(c.host_of_worker, vec![0, 1, 2, 0, 1, 2]);
        assert!(c.is_remote(0, 1));
        assert!(!c.is_remote(0, 3));
    }

    #[test]
    fn c1_caps_hosts_at_8() {
        let c = ClusterModel::c1(16);
        assert_eq!(c.host_of_worker.iter().max(), Some(&7));
        let c2 = ClusterModel::c1(4);
        assert_eq!(c2.host_of_worker, vec![0, 1, 2, 3]);
    }

    #[test]
    fn superstep_cost_formula() {
        let m = ComputeModel {
            vertex_update_ns: 10,
            message_apply_ns: 2,
            superstep_overhead_ns: 100,
            ..Default::default()
        };
        assert_eq!(m.superstep_cost(5, 7).as_nanos(), 100 + 50 + 14);
    }

    #[test]
    fn mutation_and_compaction_costs_scale() {
        let m = ComputeModel::default();
        assert_eq!(m.mutation_cost(0), SimTime::ZERO);
        assert!(m.mutation_cost(10) > m.mutation_cost(1));
        assert!(m.compaction_cost(1000) > m.compaction_cost(10));
    }

    #[test]
    fn bulk_move_scales_with_state() {
        let n = NetworkModel::gigabit_ethernet();
        let small = n.bulk_move_cost(100, 16, true);
        let big = n.bulk_move_cost(100, 64, true);
        assert!(big > small);
        assert_eq!(n.bulk_move_cost(0, 64, true), SimTime::ZERO);
    }
}
