//! Quickstart: build a small graph, assemble an engine with the builder,
//! run one shortest-path query on the simulated multi-query engine, and
//! read the answer back through its typed handle.
//!
//! ```text
//! cargo run -p qgraph-examples --bin quickstart
//! ```

#![forbid(unsafe_code)]

use qgraph_algo::SsspProgram;
use qgraph_core::EngineBuilder;
use qgraph_graph::{GraphBuilder, VertexId};
use qgraph_partition::HashPartitioner;
use qgraph_sim::ClusterModel;

fn main() {
    // A weighted diamond: two routes from 0 to 3.
    let mut builder = GraphBuilder::new(4);
    builder.add_undirected_edge(0, 1, 1.0);
    builder.add_undirected_edge(1, 3, 1.0);
    builder.add_undirected_edge(0, 2, 5.0);
    builder.add_undirected_edge(2, 3, 1.0);
    let graph = builder.build();

    // Assemble the engine: two simulated workers, hash partitioning.
    let mut engine = EngineBuilder::new(graph)
        .cluster(ClusterModel::scale_up(2))
        .partitioner(HashPartitioner::default())
        .build_sim();

    // Submit a query: shortest travel time 0 -> 3. The handle is typed —
    // `output` returns `&Option<f32>` without any casting.
    let q = engine.submit(SsspProgram::new(VertexId(0), VertexId(3)));
    engine.run();

    let distance = engine.output(&q).expect("query finished");
    println!("shortest 0 -> 3: {distance:?} (expected Some(2.0))");
    let outcome = &engine.report().outcomes[0];
    println!(
        "ran {} supersteps in {:.6} virtual seconds ({} fully local)",
        outcome.iterations,
        outcome.latency_secs(),
        outcome.local_iterations
    );
}
