//! A dispatch program so SSSP and POI queries can share one engine
//! instance (mixed workloads, as a mapping service would serve them).

use qgraph_core::{Context, PointAnswer, PointQuery, VertexProgram};
use qgraph_graph::{Topology, VertexId};

use crate::{PoiProgram, SsspProgram};

/// Either of the paper's two road-network query types.
#[derive(Clone, Debug)]
pub enum RoadProgram {
    /// A shortest-path query.
    Sssp(SsspProgram),
    /// A nearest-POI query.
    Poi(PoiProgram),
}

/// The answer of a [`RoadProgram`] query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoadAnswer {
    /// SSSP: travel time to the target, if reachable.
    Distance(Option<f32>),
    /// POI: nearest tagged vertex and travel time, if any.
    Nearest(Option<(VertexId, f32)>),
}

impl RoadProgram {
    /// A shortest-path query `source → target`.
    pub fn sssp(source: VertexId, target: VertexId) -> Self {
        RoadProgram::Sssp(SsspProgram::new(source, target))
    }

    /// A nearest-POI query from `source`.
    pub fn poi(source: VertexId) -> Self {
        RoadProgram::Poi(PoiProgram::new(source))
    }
}

impl VertexProgram for RoadProgram {
    type State = f32;
    type Message = f32;
    type Aggregate = f32;
    type Output = RoadAnswer;

    fn name(&self) -> &'static str {
        // Label per wrapped query type: mixed road workloads stay legible
        // in per-program report tables.
        match self {
            RoadProgram::Sssp(_) => "sssp",
            RoadProgram::Poi(_) => "poi",
        }
    }

    fn init_state(&self) -> f32 {
        f32::INFINITY
    }

    fn aggregate_identity(&self) -> f32 {
        f32::INFINITY
    }

    fn aggregate_combine(&self, a: &mut f32, b: &f32) {
        *a = a.min(*b);
    }

    fn aggregate_sticky(&self) -> bool {
        true
    }

    /// Both wrapped programs are min-distance folds; dispatch so the
    /// wrapped combiner stays authoritative.
    fn combine(&self, acc: &mut f32, other: &f32) -> bool {
        match self {
            RoadProgram::Sssp(p) => p.combine(acc, other),
            RoadProgram::Poi(p) => p.combine(acc, other),
        }
    }

    fn initial_messages(&self, graph: &Topology) -> Vec<(VertexId, f32)> {
        match self {
            RoadProgram::Sssp(p) => p.initial_messages(graph),
            RoadProgram::Poi(p) => p.initial_messages(graph),
        }
    }

    fn compute(
        &self,
        graph: &Topology,
        vertex: VertexId,
        state: &mut f32,
        messages: &[f32],
        ctx: &mut Context<'_, f32, f32>,
    ) {
        match self {
            RoadProgram::Sssp(p) => p.compute(graph, vertex, state, messages, ctx),
            RoadProgram::Poi(p) => p.compute(graph, vertex, state, messages, ctx),
        }
    }

    fn finalize(
        &self,
        graph: &Topology,
        states: &mut dyn Iterator<Item = (VertexId, f32)>,
    ) -> RoadAnswer {
        match self {
            RoadProgram::Sssp(p) => RoadAnswer::Distance(p.finalize(graph, states)),
            RoadProgram::Poi(p) => RoadAnswer::Nearest(p.finalize(graph, states)),
        }
    }

    /// The SSSP variant is index-eligible; POI needs tag inspection and
    /// always traverses.
    fn point_query(&self) -> Option<PointQuery> {
        match self {
            RoadProgram::Sssp(p) => p.point_query(),
            RoadProgram::Poi(_) => None,
        }
    }

    fn output_from_answer(&self, answer: &PointAnswer) -> Option<RoadAnswer> {
        match self {
            RoadProgram::Sssp(p) => p.output_from_answer(answer).map(RoadAnswer::Distance),
            RoadProgram::Poi(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_core::{SimEngine, SystemConfig};
    use qgraph_graph::GraphBuilder;
    use qgraph_partition::{Partitioner, RangePartitioner};
    use qgraph_sim::ClusterModel;
    use std::sync::Arc;

    #[test]
    fn mixed_workload_in_one_engine() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_undirected_edge(i, i + 1, 1.0);
        }
        let mut g = b.build();
        g.props_mut().tags = vec![false, false, false, true];
        let g = Arc::new(g);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = SimEngine::new(g, ClusterModel::scale_up(2), parts, SystemConfig::default());
        let q1 = e.submit(RoadProgram::sssp(VertexId(0), VertexId(2)));
        let q2 = e.submit(RoadProgram::poi(VertexId(1)));
        e.run();
        assert_eq!(*e.output(&q1).unwrap(), RoadAnswer::Distance(Some(2.0)));
        assert_eq!(
            *e.output(&q2).unwrap(),
            RoadAnswer::Nearest(Some((VertexId(3), 2.0)))
        );
        let programs: Vec<&str> = e.report().outcomes.iter().map(|o| o.program).collect();
        assert!(programs.contains(&"sssp") && programs.contains(&"poi"));
    }
}
