//! Controller-side global knowledge (paper §3.1/3.4): the scope registry
//! with its tumbling monitoring window μ, the repartition trigger Φ, and
//! the construction of the high-level [`ScopeStats`] fed to Q-cut.

use std::collections::VecDeque;

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{AppliedMutation, MutationBatch, Topology, VertexId};
use qgraph_partition::{Partitioning, WorkerId};
use qgraph_sim::SimTime;

use crate::config::QcutConfig;
use crate::qcut::ScopeStats;
use crate::QueryId;

/// A finished query's retained scope (until the monitoring window expires).
#[derive(Clone, Debug)]
struct RetainedScope {
    query: QueryId,
    vertices: Vec<VertexId>,
    expires: SimTime,
}

/// The centralized controller state.
///
/// Holds only *high-level* query knowledge plus the registry of scope
/// vertex sets needed to resolve `move(LS(q,w), w, w')` requests — in the
/// paper that resolution happens on the workers; keeping the registry
/// beside the engine's single address space is equivalent and keeps the
/// controller/worker split observable in the cost model rather than the
/// data layout.
pub struct Controller {
    cfg: Option<QcutConfig>,
    finished: VecDeque<RetainedScope>,
    /// When the last repartition (or trigger evaluation that ran ILS)
    /// happened.
    pub last_repartition: SimTime,
    /// An ILS run is in flight (its virtual budget has not elapsed).
    pub ils_inflight: bool,
}

impl Controller {
    /// A controller with the given Q-cut configuration (`None` = static).
    pub fn new(cfg: Option<QcutConfig>) -> Self {
        Controller {
            cfg,
            finished: VecDeque::new(),
            last_repartition: SimTime::ZERO,
            ils_inflight: false,
        }
    }

    /// The Q-cut configuration, if adaptive.
    pub fn qcut_config(&self) -> Option<&QcutConfig> {
        self.cfg.as_ref()
    }

    /// Record a finished query's global scope; it stays visible for the
    /// monitoring window μ.
    ///
    /// Eviction runs here *as well as* at trigger evaluation: the window
    /// is wall-clock in the thread runtime, so a burst of short queries
    /// followed by a quiet period must not keep arbitrarily stale scopes
    /// alive until the next query happens to finish.
    pub fn record_finished_scope(&mut self, query: QueryId, vertices: Vec<VertexId>, now: SimTime) {
        let Some((window_secs, cap)) = self
            .cfg
            .as_ref()
            .map(|c| (c.monitoring_window_secs, c.max_queries * 4))
        else {
            return;
        };
        self.expire(now);
        // Scope-retention expiry is plain scheduling math on the
        // controller's own monitoring window, not latency attribution.
        // qlint: allow(time-epoch-arith)
        let expires = now + SimTime::from_secs_f64(window_secs);
        self.finished.push_back(RetainedScope {
            query,
            vertices,
            expires,
        });
        // Bound memory: keep at most 4x the ILS input cap.
        while self.finished.len() > cap {
            self.finished.pop_front();
        }
    }

    /// Drop scopes whose window expired.
    pub fn expire(&mut self, now: SimTime) {
        while let Some(front) = self.finished.front() {
            if front.expires <= now {
                self.finished.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of retained finished scopes.
    pub fn retained(&self) -> usize {
        self.finished.len()
    }

    /// Mutation-plane staleness: drop every retained finished scope that
    /// touches a mutated vertex. Their sizes and overlaps were measured
    /// against the pre-mutation topology, so feeding them to the ILS
    /// would optimize for adjacency that no longer exists; untouched
    /// scopes stay (their statistics are still valid). Live queries are
    /// unaffected — their scopes are re-gathered at every barrier.
    pub fn invalidate_scopes(&mut self, mutated: &[VertexId]) {
        if mutated.is_empty() || self.finished.is_empty() {
            return;
        }
        let set: FxHashSet<VertexId> = mutated.iter().copied().collect();
        self.finished
            .retain(|r| !r.vertices.iter().any(|v| set.contains(v)));
    }

    /// Should a repartition be triggered now? (paper §3.4: mean query
    /// locality of active queries below Φ — extended with the activity
    /// imbalance watch, see [`QcutConfig::imbalance_threshold`] — not
    /// already running, cooldown respected.)
    pub fn should_trigger(
        &self,
        now: SimTime,
        mean_locality: f64,
        activity_imbalance: f64,
        active_queries: usize,
    ) -> bool {
        let Some(cfg) = &self.cfg else { return false };
        if self.ils_inflight || active_queries == 0 {
            return false;
        }
        let cooldown = SimTime::from_secs_f64(cfg.min_repartition_interval_secs);
        if now < self.last_repartition + cooldown {
            return false;
        }
        Self::thresholds_exceeded(cfg, mean_locality, activity_imbalance)
    }

    /// Threshold-only trigger for the thread runtime's superstep-cadence
    /// stop-the-world phase: the cadence ([`QcutConfig::qcut_interval`])
    /// already plays the cooldown role that virtual time plays in
    /// [`Controller::should_trigger`], so only the locality / imbalance
    /// thresholds are consulted here.
    pub fn interval_trigger(
        &self,
        mean_locality: f64,
        activity_imbalance: f64,
        active_queries: usize,
    ) -> bool {
        let Some(cfg) = &self.cfg else { return false };
        if active_queries == 0 {
            return false;
        }
        Self::thresholds_exceeded(cfg, mean_locality, activity_imbalance)
    }

    /// The shared trigger policy (paper §3.4 Φ plus the imbalance watch):
    /// both the virtual-time and the superstep-cadence triggers consult
    /// exactly this predicate.
    fn thresholds_exceeded(cfg: &QcutConfig, mean_locality: f64, activity_imbalance: f64) -> bool {
        mean_locality < cfg.locality_threshold || activity_imbalance > cfg.imbalance_threshold
    }

    /// The ILS input selection policy: live queries first, then retained
    /// finished scopes newest-first, empties skipped, capped at the
    /// configured `max_queries`. Both the [`ScopeStats`] snapshot and the
    /// repartition locality measurement go through this one selection, so
    /// the reported `locality_before/after` covers exactly the scopes the
    /// ILS optimized.
    fn select_scopes<'a>(
        &'a self,
        live: &'a [(QueryId, Vec<VertexId>)],
    ) -> Vec<(QueryId, &'a [VertexId])> {
        let max_queries = self
            .cfg
            .as_ref()
            .map(|c| c.max_queries)
            .unwrap_or(usize::MAX);
        let mut selected: Vec<(QueryId, &[VertexId])> = Vec::new();
        for (q, vs) in live {
            if selected.len() >= max_queries {
                break;
            }
            if !vs.is_empty() {
                selected.push((*q, vs));
            }
        }
        for r in self.finished.iter().rev() {
            if selected.len() >= max_queries {
                break;
            }
            if !r.vertices.is_empty() {
                selected.push((r.query, &r.vertices));
            }
        }
        selected
    }

    /// The scope population a repartition observes (owned form of
    /// [`Controller::select_scopes`]) — what the runtimes measure
    /// `RepartitionEvent::locality_before/after` over.
    pub fn observed_scopes(
        &self,
        live: &[(QueryId, Vec<VertexId>)],
    ) -> Vec<(QueryId, Vec<VertexId>)> {
        self.select_scopes(live)
            .into_iter()
            .map(|(q, vs)| (q, vs.to_vec()))
            .collect()
    }

    /// Build the high-level [`ScopeStats`] snapshot for an ILS run from the
    /// live queries' scopes plus the retained finished scopes, capped at
    /// the configured maximum (most recent first; live queries preferred).
    pub fn build_scope_stats(
        &self,
        live: &[(QueryId, Vec<VertexId>)],
        partitioning: &Partitioning,
    ) -> ScopeStats {
        let k = partitioning.num_workers();
        let selected = self.select_scopes(live);

        // Sizes per worker + inverted index for overlaps.
        let mut sizes = vec![vec![0.0f64; k]; selected.len()];
        let mut vertex_queries: FxHashMap<VertexId, Vec<u32>> = FxHashMap::default();
        for (qi, (_, vs)) in selected.iter().enumerate() {
            for &v in vs.iter() {
                sizes[qi][partitioning.worker_of(v).index()] += 1.0;
                vertex_queries.entry(v).or_default().push(qi as u32);
            }
        }

        // Pairwise overlaps via the inverted index (each vertex lives on
        // exactly one worker, so the per-worker and global overlap agree).
        let mut overlap_map: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        let mut scope_vertices_per_worker = vec![0.0f64; k];
        for (v, qs) in &vertex_queries {
            scope_vertices_per_worker[partitioning.worker_of(*v).index()] += 1.0;
            if qs.len() >= 2 {
                for i in 0..qs.len() {
                    for j in (i + 1)..qs.len() {
                        let key = (qs[i].min(qs[j]), qs[i].max(qs[j]));
                        *overlap_map.entry(key).or_default() += 1.0;
                    }
                }
            }
        }
        let mut overlaps: Vec<(usize, usize, f64)> = overlap_map
            .into_iter()
            .map(|((a, b), o)| (a as usize, b as usize, o))
            .collect();
        overlaps.sort_unstable_by_key(|&(a, b, _)| (a, b));

        let base_vertices: Vec<f64> = partitioning
            .sizes()
            .iter()
            .zip(&scope_vertices_per_worker)
            .map(|(&total, &in_scope)| (total as f64 - in_scope).max(0.0))
            .collect();

        ScopeStats {
            num_workers: k,
            queries: selected.iter().map(|(q, _)| *q).collect(),
            sizes,
            overlaps,
            base_vertices,
        }
    }

    /// Resolve a finished query's retained scope (for move execution).
    pub fn finished_scope(&self, q: QueryId) -> Option<&[VertexId]> {
        self.finished
            .iter()
            .rev()
            .find(|r| r.query == q)
            .map(|r| r.vertices.as_slice())
    }
}

/// What one stop-the-world barrier's mutation phase did — the sim prices
/// `ops`/`compacted_edges`, and both engines patch the barrier duration
/// onto `report.mutations[events_from..]` once the barrier end is known.
pub(crate) struct MutationApply {
    /// Total ops applied across the barrier's batches.
    pub ops: usize,
    /// Live edges rebuilt into a fresh CSR, when the compaction policy
    /// fired.
    pub compacted_edges: Option<usize>,
    /// Index of the first `MutationEvent` this barrier appended.
    pub events_from: usize,
}

/// The runtime-agnostic mutation-epoch body both engines run under their
/// stop-the-world barriers: apply each due batch atomically (one graph
/// epoch each, in order), extend the partitioning for created vertices,
/// drop stale retained scopes, repair the installed label index (when
/// `index` is `Some` — see [`crate::index_plane::PointIndex::repair`]),
/// record `MutationEvent`s, and evaluate the compaction policy once at
/// the end. The callers add what is theirs alone — the sim charges
/// virtual cost from the returned totals, the thread runtime broadcasts
/// the new `Arc<Topology>` to its workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_mutation_epochs(
    topology: &mut Topology,
    partitioning: &mut Partitioning,
    controller: &mut Controller,
    report: &mut crate::report::EngineReport,
    batches: &[MutationBatch],
    compact_fraction: f64,
    applied_at_secs: f64,
    mut index: Option<&mut (dyn crate::index_plane::PointIndex + 'static)>,
) -> MutationApply {
    let events_from = report.mutations.len();
    let mut ops = 0usize;
    for batch in batches {
        let applied = topology.apply(batch);
        place_new_vertices(partitioning, &applied);
        // Retained finished scopes touching mutated vertices carry
        // pre-mutation statistics: drop them before the next ILS.
        controller.invalidate_scopes(&applied.touched);
        // Per-batch index repair keeps `repaired_through` in lockstep
        // with the epoch: a query admitted right after this barrier sees
        // an index valid for the graph it will run against.
        if let Some(ix) = index.as_mut() {
            let summary = ix.repair(topology, &applied, applied.epoch);
            report
                .index_repairs
                .push(crate::index_plane::IndexRepairEvent {
                    applied_at: applied_at_secs,
                    epoch: applied.epoch,
                    summary,
                });
        }
        ops += applied.ops;
        report.mutations.push(crate::report::MutationEvent {
            applied_at: applied_at_secs,
            epoch: applied.epoch,
            ops: applied.ops,
            new_vertices: applied.new_vertices.len(),
            compacted: false,
            barrier_duration: 0.0, // patched once the barrier end is known
        });
    }
    // Compaction policy: once per barrier, after every batch applied.
    let mut compacted_edges = None;
    if !batches.is_empty()
        && !topology.is_compact()
        && topology.overlay_fraction() >= compact_fraction
    {
        compacted_edges = Some(topology.num_edges());
        *topology = topology.compacted();
        if let Some(ev) = report.mutations.last_mut() {
            ev.compacted = true;
        }
    }
    MutationApply {
        ops,
        compacted_edges,
        events_from,
    }
}

/// Place the vertices a mutation batch created: each goes to the worker
/// owning the plurality of its batch-adjacent neighbors (ties to the
/// lower worker id), or to the smallest partition when the batch attached
/// it to nothing already placed. A cheap locality heuristic — the next
/// ILS pass refines the placement with real scope statistics.
pub fn place_new_vertices(partitioning: &mut Partitioning, applied: &AppliedMutation) {
    if applied.new_vertices.is_empty() {
        return;
    }
    let mut sizes = partitioning.sizes();
    for (v, neighbors) in &applied.new_vertex_neighbors {
        debug_assert_eq!(
            v.index(),
            partitioning.num_vertices(),
            "new vertices extend the assignment densely, in id order"
        );
        let mut votes = vec![0usize; partitioning.num_workers()];
        let mut any = false;
        for n in neighbors {
            if n.index() < partitioning.num_vertices() {
                votes[partitioning.worker_of(*n).index()] += 1;
                any = true;
            }
        }
        let w = if any {
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .expect("at least one worker")
        } else {
            sizes
                .iter()
                .enumerate()
                .min_by_key(|&(i, c)| (*c, i))
                .map(|(i, _)| i)
                .expect("at least one worker")
        };
        partitioning.push(WorkerId(w as u32));
        sizes[w] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> Controller {
        Controller::new(Some(QcutConfig {
            monitoring_window_secs: 100.0,
            min_repartition_interval_secs: 10.0,
            locality_threshold: 0.7,
            imbalance_threshold: 0.5,
            ..Default::default()
        }))
    }

    fn part(assign: Vec<u32>, k: usize) -> Partitioning {
        Partitioning::new(assign.into_iter().map(WorkerId).collect(), k)
    }

    #[test]
    fn scopes_expire_after_window() {
        let mut c = ctl();
        c.record_finished_scope(QueryId(0), vec![VertexId(1)], SimTime::ZERO);
        assert_eq!(c.retained(), 1);
        c.expire(SimTime::from_secs(99));
        assert_eq!(c.retained(), 1);
        c.expire(SimTime::from_secs(101));
        assert_eq!(c.retained(), 0);
    }

    #[test]
    fn stale_scopes_evicted_on_insert_not_only_on_expire_calls() {
        let mut c = ctl(); // 100 s monitoring window
        c.record_finished_scope(QueryId(0), vec![VertexId(1)], SimTime::ZERO);
        c.record_finished_scope(QueryId(1), vec![VertexId(2)], SimTime::from_secs(1));
        assert_eq!(c.retained(), 2);
        // A long quiet gap, then one more finish: the burst's scopes are
        // long past their window and must not survive the insert.
        c.record_finished_scope(QueryId(2), vec![VertexId(3)], SimTime::from_secs(500));
        assert_eq!(c.retained(), 1);
        assert_eq!(c.finished_scope(QueryId(0)), None);
        assert_eq!(c.finished_scope(QueryId(2)), Some(&[VertexId(3)][..]));
    }

    #[test]
    fn trigger_respects_threshold_and_cooldown() {
        let mut c = ctl();
        assert!(c.should_trigger(SimTime::from_secs(11), 0.5, 0.0, 4));
        assert!(
            !c.should_trigger(SimTime::from_secs(11), 0.9, 0.0, 4),
            "locality fine, balance fine"
        );
        assert!(
            !c.should_trigger(SimTime::from_secs(5), 0.5, 0.0, 4),
            "cooldown"
        );
        assert!(
            !c.should_trigger(SimTime::from_secs(11), 0.5, 0.0, 0),
            "no queries"
        );
        c.ils_inflight = true;
        assert!(
            !c.should_trigger(SimTime::from_secs(11), 0.5, 0.0, 4),
            "in flight"
        );
    }

    #[test]
    fn imbalance_also_triggers() {
        let c = ctl();
        assert!(
            c.should_trigger(SimTime::from_secs(11), 0.95, 0.8, 4),
            "high locality but heavy straggler skew must trigger"
        );
        assert!(!c.should_trigger(SimTime::from_secs(11), 0.95, 0.3, 4));
    }

    #[test]
    fn static_controller_never_triggers() {
        let c = Controller::new(None);
        assert!(!c.should_trigger(SimTime::from_secs(100), 0.0, 1.0, 10));
        assert!(!c.interval_trigger(0.0, 1.0, 10));
    }

    #[test]
    fn interval_trigger_ignores_cooldown_but_keeps_thresholds() {
        let mut c = ctl();
        // Freshly repartitioned: the time-based trigger is in cooldown but
        // the cadence-based one only looks at the thresholds.
        c.last_repartition = SimTime::from_secs(100);
        assert!(!c.should_trigger(SimTime::from_secs(101), 0.5, 0.0, 4));
        assert!(c.interval_trigger(0.5, 0.0, 4), "low locality");
        assert!(c.interval_trigger(0.9, 0.8, 4), "straggler skew");
        assert!(!c.interval_trigger(0.9, 0.0, 4), "healthy system");
        assert!(!c.interval_trigger(0.5, 0.0, 0), "no queries");
    }

    #[test]
    fn scope_stats_sizes_and_overlaps() {
        let c = ctl();
        let p = part(vec![0, 0, 1, 1], 2);
        let live = vec![
            (QueryId(0), vec![VertexId(0), VertexId(1), VertexId(2)]),
            (QueryId(1), vec![VertexId(2), VertexId(3)]),
        ];
        let s = c.build_scope_stats(&live, &p);
        assert_eq!(s.validate(), Ok(()));
        assert_eq!(s.sizes[0], vec![2.0, 1.0]);
        assert_eq!(s.sizes[1], vec![0.0, 2.0]);
        assert_eq!(s.overlaps, vec![(0, 1, 1.0)]); // vertex 2 shared
                                                   // base: w0 has 2 vertices, both in scope 0 -> 0 base; w1 has 2, both in scopes.
        assert_eq!(s.base_vertices, vec![0.0, 0.0]);
    }

    #[test]
    fn scope_stats_includes_recent_finished() {
        let mut c = ctl();
        let p = part(vec![0, 1], 2);
        c.record_finished_scope(QueryId(5), vec![VertexId(0)], SimTime::ZERO);
        let s = c.build_scope_stats(&[], &p);
        assert_eq!(s.queries, vec![QueryId(5)]);
        assert_eq!(s.sizes[0], vec![1.0, 0.0]);
        assert_eq!(s.base_vertices, vec![0.0, 1.0]);
    }

    #[test]
    fn max_queries_cap_prefers_live() {
        let mut c = Controller::new(Some(QcutConfig {
            max_queries: 2,
            ..Default::default()
        }));
        let p = part(vec![0, 1], 2);
        c.record_finished_scope(QueryId(9), vec![VertexId(0)], SimTime::ZERO);
        let live = vec![
            (QueryId(0), vec![VertexId(0)]),
            (QueryId(1), vec![VertexId(1)]),
        ];
        let s = c.build_scope_stats(&live, &p);
        assert_eq!(s.queries, vec![QueryId(0), QueryId(1)]);
    }

    #[test]
    fn mutation_invalidates_touching_scopes_only() {
        let mut c = ctl();
        c.record_finished_scope(QueryId(0), vec![VertexId(1), VertexId(2)], SimTime::ZERO);
        c.record_finished_scope(QueryId(1), vec![VertexId(7)], SimTime::ZERO);
        c.invalidate_scopes(&[VertexId(2), VertexId(9)]);
        assert_eq!(c.retained(), 1, "only the touching scope is stale");
        assert!(c.finished_scope(QueryId(0)).is_none());
        assert!(c.finished_scope(QueryId(1)).is_some());
        c.invalidate_scopes(&[]);
        assert_eq!(c.retained(), 1, "empty footprint is a no-op");
    }

    #[test]
    fn new_vertices_placed_with_batch_neighbors() {
        use qgraph_graph::{MutationBatch, Topology};
        // Worker 0 owns {0,1}, worker 1 owns {2,3}.
        let mut p = part(vec![0, 0, 1, 1], 2);
        let mut b = qgraph_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        let mut t = Topology::new(b.build());
        let mut batch = MutationBatch::new();
        // Vertex 4: two neighbors on worker 1 -> placed there. Vertex 5:
        // no edges -> smallest partition.
        batch
            .add_vertex()
            .add_edge(4, 2, 1.0)
            .add_edge(3, 4, 1.0)
            .add_edge(4, 0, 1.0)
            .add_vertex();
        let applied = t.apply(&batch);
        place_new_vertices(&mut p, &applied);
        assert_eq!(p.num_vertices(), 6);
        assert_eq!(p.worker_of(VertexId(4)), WorkerId(1), "plurality wins");
        assert_eq!(p.worker_of(VertexId(5)), WorkerId(0), "smallest partition");
    }

    #[test]
    fn finished_scope_lookup() {
        let mut c = ctl();
        c.record_finished_scope(QueryId(3), vec![VertexId(7)], SimTime::ZERO);
        assert_eq!(c.finished_scope(QueryId(3)), Some(&[VertexId(7)][..]));
        assert_eq!(c.finished_scope(QueryId(4)), None);
    }
}
