//! POI tag assignment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qgraph_graph::Graph;

/// Tag each vertex independently with probability `p`, in place.
///
/// The paper assigns the "gas station" tag with probability 1/12500 ≈ the
/// real gas-station-to-road-segment ratio. At our reduced graph scales the
/// experiment harness uses a proportionally larger `p` so the *expected
/// number of reachable POIs per query* matches the paper's setting; the
/// probability is a parameter for exactly that reason.
pub fn assign_tags(graph: &mut Graph, p: f64, seed: u64) -> usize {
    assert!(
        (0.0..=1.0).contains(&p),
        "tag probability out of range: {p}"
    );
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7A67_5F53_4545_44D1);
    let mut tags = vec![false; n];
    let mut count = 0usize;
    for t in tags.iter_mut() {
        if rng.gen_bool(p) {
            *t = true;
            count += 1;
        }
    }
    graph.props_mut().tags = tags;
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::GraphBuilder;

    #[test]
    fn zero_probability_tags_nothing() {
        let mut g = GraphBuilder::new(100).build();
        assert_eq!(assign_tags(&mut g, 0.0, 1), 0);
        assert_eq!(g.props().num_tagged(), 0);
    }

    #[test]
    fn one_probability_tags_everything() {
        let mut g = GraphBuilder::new(100).build();
        assert_eq!(assign_tags(&mut g, 1.0, 1), 100);
    }

    #[test]
    fn expected_count_roughly_matches() {
        let mut g = GraphBuilder::new(100_000).build();
        let n = assign_tags(&mut g, 0.01, 7);
        assert!((500..1500).contains(&n), "got {n}");
    }

    #[test]
    fn deterministic() {
        let mut a = GraphBuilder::new(1000).build();
        let mut b = GraphBuilder::new(1000).build();
        assign_tags(&mut a, 0.05, 3);
        assign_tags(&mut b, 0.05, 3);
        assert_eq!(a.props().tags, b.props().tags);
    }
}
