//! Incremental construction of CSR graphs.

use crate::{Graph, VertexId, VertexProps};

/// Accumulates edges and produces an immutable CSR [`Graph`].
///
/// Edges may be added in any order; `build` counting-sorts them by source,
/// which is O(V + E) and allocation-friendly for the multi-million edge
/// graphs the paper uses.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    sources: Vec<VertexId>,
    targets: Vec<VertexId>,
    weights: Vec<f32>,
    props: VertexProps,
}

impl GraphBuilder {
    /// A builder for a graph with `num_vertices` vertices (ids `0..n`).
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            sources: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
            props: VertexProps::default(),
        }
    }

    /// Pre-allocate room for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.sources.reserve(n);
        self.targets.reserve(n);
        self.weights.reserve(n);
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.sources.len()
    }

    /// Add a directed edge `from -> to` with weight `w`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32, w: f32) {
        assert!(
            (from as usize) < self.num_vertices && (to as usize) < self.num_vertices,
            "edge ({from},{to}) out of range for {} vertices",
            self.num_vertices
        );
        self.sources.push(VertexId(from));
        self.targets.push(VertexId(to));
        self.weights.push(w);
    }

    /// Add both `a -> b` and `b -> a` with the same weight (road segments in
    /// the paper's networks are traversable in both directions).
    pub fn add_undirected_edge(&mut self, a: u32, b: u32, w: f32) {
        self.add_edge(a, b, w);
        self.add_edge(b, a, w);
    }

    /// Attach vertex properties (coordinates / tags / regions). The props'
    /// vectors must either be empty or have `num_vertices` entries; this is
    /// checked in `build`.
    pub fn set_props(&mut self, props: VertexProps) {
        self.props = props;
    }

    /// Finalize into a CSR [`Graph`]. Counting-sort by source vertex.
    pub fn build(self) -> Graph {
        let n = self.num_vertices;
        let m = self.sources.len();
        self.props.assert_len_compatible(n);

        let mut offsets = vec![0u32; n + 1];
        for s in &self.sources {
            offsets[s.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![VertexId(0); m];
        let mut weights = vec![0f32; m];
        for i in 0..m {
            let s = self.sources[i].index();
            let slot = cursor[s] as usize;
            cursor[s] += 1;
            targets[slot] = self.targets[i];
            weights[slot] = self.weights[i];
        }

        Graph {
            offsets,
            targets,
            weights,
            props: self.props,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_preserves_all_edges() {
        let mut b = GraphBuilder::new(3).with_edge_capacity(3);
        b.add_edge(2, 0, 0.5);
        b.add_edge(0, 1, 1.5);
        b.add_edge(2, 1, 2.5);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        let n2: Vec<_> = g.neighbors(VertexId(2)).collect();
        assert_eq!(n2, vec![(VertexId(0), 0.5), (VertexId(1), 2.5)]);
    }

    #[test]
    fn undirected_adds_two_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1, 3.0);
        let g = b.build();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.0);
        let g = b.build();
        assert_eq!(g.degree(VertexId(0)), 2);
    }

    #[test]
    fn self_loops_are_kept() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 1.0);
        let g = b.build();
        assert_eq!(g.degree(VertexId(0)), 1);
        assert!(g.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1.0);
    }

    #[test]
    fn counts_exposed_during_building() {
        let mut b = GraphBuilder::new(4);
        assert_eq!(b.num_vertices(), 4);
        b.add_edge(0, 1, 1.0);
        assert_eq!(b.num_edges(), 1);
    }
}
