//! The assignment type shared by all partitioners and the engine.

use qgraph_graph::{Graph, VertexId};

/// Identifier of a worker (equivalently: a partition).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A complete vertex→worker assignment.
///
/// This is the *dynamic* object of the paper's partitioning problem: the
/// assignment function `A : V × T → W` at one instant. The engine mutates it
/// during global barriers via [`Partitioning::move_vertex`].
#[derive(Clone, Debug, PartialEq)]
pub struct Partitioning {
    assignment: Vec<WorkerId>,
    num_workers: usize,
}

impl Partitioning {
    /// Build from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any worker id is out of range or `num_workers == 0`.
    pub fn new(assignment: Vec<WorkerId>, num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        assert!(
            assignment.iter().all(|w| w.index() < num_workers),
            "assignment references a worker >= {num_workers}"
        );
        Partitioning {
            assignment,
            num_workers,
        }
    }

    /// All vertices on worker 0 (the trivial single-partition case).
    pub fn single(num_vertices: usize) -> Self {
        Partitioning {
            assignment: vec![WorkerId(0); num_vertices],
            num_workers: 1,
        }
    }

    /// Number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of vertices covered by the assignment.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The worker owning vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: VertexId) -> WorkerId {
        self.assignment[v.index()]
    }

    /// Reassign `v` to `w`.
    #[inline]
    pub fn move_vertex(&mut self, v: VertexId, w: WorkerId) {
        debug_assert!(w.index() < self.num_workers);
        self.assignment[v.index()] = w;
    }

    /// Append one vertex assigned to `w` (the mutation plane's
    /// `AddVertex`: ids are dense, so the new vertex is
    /// `num_vertices() - 1` after the push).
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    #[inline]
    pub fn push(&mut self, w: WorkerId) {
        assert!(
            w.index() < self.num_workers,
            "push assigns to worker {w} but there are only {} workers",
            self.num_workers
        );
        self.assignment.push(w);
    }

    /// Vertex count per worker.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_workers];
        for w in &self.assignment {
            sizes[w.index()] += 1;
        }
        sizes
    }

    /// Vertices assigned to worker `w` (allocates; intended for setup, not
    /// the hot path).
    pub fn vertices_of(&self, w: WorkerId) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == w)
            .map(|(i, _)| VertexId::from(i))
            .collect()
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[WorkerId] {
        &self.assignment
    }
}

/// A static partitioning algorithm.
pub trait Partitioner {
    /// Produce an assignment of `graph`'s vertices onto `num_workers` workers.
    fn partition(&self, graph: &Graph, num_workers: usize) -> Partitioning;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_count_assignments() {
        let p = Partitioning::new(vec![WorkerId(0), WorkerId(1), WorkerId(1), WorkerId(0)], 2);
        assert_eq!(p.sizes(), vec![2, 2]);
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.worker_of(VertexId(2)), WorkerId(1));
    }

    #[test]
    fn move_vertex_updates_assignment() {
        let mut p = Partitioning::new(vec![WorkerId(0); 3], 2);
        p.move_vertex(VertexId(1), WorkerId(1));
        assert_eq!(p.worker_of(VertexId(1)), WorkerId(1));
        assert_eq!(p.sizes(), vec![2, 1]);
    }

    #[test]
    fn push_appends_assignment() {
        let mut p = Partitioning::new(vec![WorkerId(0); 2], 2);
        p.push(WorkerId(1));
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.worker_of(VertexId(2)), WorkerId(1));
        assert_eq!(p.sizes(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "only 2 workers")]
    fn push_out_of_range_panics() {
        let mut p = Partitioning::new(vec![WorkerId(0)], 2);
        p.push(WorkerId(2));
    }

    #[test]
    fn vertices_of_lists_members() {
        let p = Partitioning::new(vec![WorkerId(1), WorkerId(0), WorkerId(1)], 2);
        assert_eq!(p.vertices_of(WorkerId(1)), vec![VertexId(0), VertexId(2)]);
    }

    #[test]
    #[should_panic(expected = "references a worker")]
    fn out_of_range_worker_rejected() {
        Partitioning::new(vec![WorkerId(5)], 2);
    }

    #[test]
    fn single_puts_everything_on_worker_zero() {
        let p = Partitioning::single(10);
        assert_eq!(p.num_workers(), 1);
        assert_eq!(p.sizes(), vec![10]);
    }
}
