//! **Q-Graph**: multi-query vertex-centric graph processing with
//! query-aware partitioning (*Q-cut*), *hybrid barrier synchronization*,
//! and runtime *adaptivity* — a Rust reproduction of Mayer et al.,
//! "Q-Graph: Preserving Query Locality in Multi-Query Graph Processing"
//! (GRADES-NDA'18).
//!
//! # Architecture (paper §3.1)
//!
//! Q-Graph is two-layered:
//! * **Workers** execute vertex functions over their partition of the
//!   shared graph and exchange messages ([`worker`]).
//! * A **centralized controller** holds *high-level* global knowledge —
//!   per-query local scope sizes and intersections, never raw vertices —
//!   and uses it for barrier management and repartitioning ([`controller`]).
//!
//! Two runtimes drive these pieces:
//! * [`SimEngine`] — a deterministic discrete-event engine over the
//!   `qgraph-sim` virtual cluster; every experiment in `EXPERIMENTS.md`
//!   uses it (see `DESIGN.md` for why the paper's testbeds are simulated).
//! * [`runtime::ThreadEngine`] — a real shared-memory multi-threaded
//!   executor with the same worker/controller protocol, demonstrating the
//!   library on actual hardware.
//!
//! # Quick example
//!
//! ```
//! use qgraph_core::{SimEngine, SystemConfig, programs::ReachProgram};
//! use qgraph_graph::{GraphBuilder, VertexId};
//! use qgraph_partition::{HashPartitioner, Partitioner};
//! use qgraph_sim::ClusterModel;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 1.0);
//! let graph = b.build();
//! let parts = HashPartitioner::default().partition(&graph, 2);
//! let mut engine = SimEngine::new(
//!     graph.into(),
//!     ClusterModel::scale_up(2),
//!     parts,
//!     SystemConfig::default(),
//! );
//! let q = engine.submit(ReachProgram::new(VertexId(0)));
//! engine.run();
//! let reached = engine.output(q).unwrap();
//! assert!(reached.contains(&VertexId(2)));
//! ```

pub mod barrier;
pub mod config;
pub mod controller;
pub mod engine;
pub mod program;
pub mod programs;
pub mod qcut;
pub mod query;
pub mod report;
pub mod runtime;
pub mod worker;

pub use config::{BarrierMode, QcutConfig, SystemConfig};
pub use engine::SimEngine;
pub use program::{Context, VertexProgram};
pub use query::{QueryId, QueryOutcome};
pub use report::EngineReport;
