//! qgraph-check: workspace correctness tooling.
//!
//! The `qlint` pass walks every `crates/*/src/**/*.rs` file, lexes it
//! with a hand-rolled tokenizer ([`lex`]), and applies the data-driven
//! project rules ([`rules::RULES`]): adjacency access discipline,
//! thread-spawn discipline, distance-comparison hygiene in the index,
//! unwrap-free engine hot loops, epoch/SimTime attribution, and the
//! `#![forbid(unsafe_code)]` floor. Findings are machine-readable
//! (`Finding`, JSON via `--json` on the binary) and the whole pass
//! runs as a tier-1 test asserting zero findings.
//!
//! Test-gated code (`#[cfg(test)]` items) is exempt everywhere, and a
//! finding can be waived with a justified
//! `// qlint: allow(rule-name) — why` comment on its line or the line
//! above.

#![forbid(unsafe_code)]

pub mod lex;
pub mod rules;

use lex::{Lexed, Tok, TokKind};
use rules::{Check, Pat, Rule, RULES};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    /// The trimmed source line (empty for whole-file findings).
    pub excerpt: String,
}

impl Finding {
    /// One-line JSON encoding (the only strings involved are source
    /// text and paths; escape the minimum that keeps them valid).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\"}}",
            self.rule,
            esc(&self.file),
            self.line,
            esc(&self.excerpt)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Lint one file's source text under its workspace-relative path.
/// Exposed so the fixture tests can lint seeded sources *as if* they
/// lived inside a rule's scope.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex::lex(src);
    let test_spans = lex::test_spans(&lexed.toks);
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    for rule in RULES {
        if !in_scope(rel_path, rule) {
            continue;
        }
        match rule.check {
            Check::ForbidSeqs(seqs) => {
                for hit in seq_hits(&lexed.toks, seqs) {
                    push_finding(
                        &mut findings,
                        rule,
                        rel_path,
                        hit,
                        &lexed,
                        &test_spans,
                        &lines,
                    );
                }
            }
            Check::ForbidAdjacent {
                ops,
                idents,
                suffixes,
            } => {
                for hit in adjacent_hits(&lexed.toks, ops, idents, suffixes) {
                    push_finding(
                        &mut findings,
                        rule,
                        rel_path,
                        hit,
                        &lexed,
                        &test_spans,
                        &lines,
                    );
                }
            }
            Check::RequireSeq(seq) => {
                if seq_hits(&lexed.toks, &[seq]).is_empty() {
                    findings.push(Finding {
                        rule: rule.name,
                        file: rel_path.to_string(),
                        line: 1,
                        excerpt: format!("missing required `{}`", seq_text(seq)),
                    });
                }
            }
        }
    }
    findings
}

fn push_finding(
    findings: &mut Vec<Finding>,
    rule: &Rule,
    rel_path: &str,
    tok_idx: usize,
    lexed: &Lexed,
    test_spans: &[(usize, usize)],
    lines: &[&str],
) {
    if test_spans.iter().any(|&(a, b)| a <= tok_idx && tok_idx < b) {
        return;
    }
    let line = lexed.toks[tok_idx].line;
    let waived = lexed
        .allows
        .iter()
        .any(|(l, r)| r == rule.name && (*l == line || *l + 1 == line));
    if waived {
        return;
    }
    let excerpt = lines
        .get(line as usize - 1)
        .map(|l| l.trim().to_string())
        .unwrap_or_default();
    findings.push(Finding {
        rule: rule.name,
        file: rel_path.to_string(),
        line,
        excerpt,
    });
}

fn in_scope(rel_path: &str, rule: &Rule) -> bool {
    let scoped = rule.scope.is_empty() || rule.scope.iter().any(|s| rel_path.contains(s));
    scoped && !rule.exempt.iter().any(|s| rel_path.contains(s))
}

fn pat_matches(pat: &Pat, tok: &Tok) -> bool {
    match (pat, &tok.kind) {
        (Pat::Id(want), TokKind::Ident(name)) => name == want,
        (Pat::P(want), TokKind::Punct(p)) => p == want,
        _ => false,
    }
}

/// Token indices where any of `seqs` begins.
fn seq_hits(toks: &[Tok], seqs: &[&[Pat]]) -> Vec<usize> {
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        for seq in seqs {
            if toks.len() - i >= seq.len()
                && seq
                    .iter()
                    .enumerate()
                    .all(|(k, p)| pat_matches(p, &toks[i + k]))
            {
                hits.push(i);
                break;
            }
        }
    }
    hits
}

/// Token indices of identifiers from `idents`/`suffixes` adjacent to
/// one of `ops` — directly (`d < best`, `epoch += 1`, `sum - x`) or
/// across a no-argument call (`.epoch() + 1`).
fn adjacent_hits(toks: &[Tok], ops: &[&str], idents: &[&str], suffixes: &[&str]) -> Vec<usize> {
    let is_op = |k: &TokKind| matches!(k, TokKind::Punct(p) if ops.contains(p));
    let mut hits = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !(idents.contains(&name.as_str()) || suffixes.iter().any(|s| name.ends_with(s))) {
            continue;
        }
        // op immediately before: `… < d`, `now + SimTime::…`.
        if i > 0 && is_op(&toks[i - 1].kind) {
            hits.push(i);
            continue;
        }
        // op immediately after: `d < …`, `epoch += 1`.
        if i + 1 < toks.len() && is_op(&toks[i + 1].kind) {
            hits.push(i);
            continue;
        }
        // op after a no-arg call: `.epoch() + 1`.
        if i + 3 < toks.len()
            && toks[i + 1].kind == TokKind::Punct("(")
            && toks[i + 2].kind == TokKind::Punct(")")
            && is_op(&toks[i + 3].kind)
        {
            hits.push(i);
        }
    }
    hits
}

fn seq_text(seq: &[Pat]) -> String {
    seq.iter()
        .map(|p| match p {
            Pat::Id(s) => *s,
            Pat::P(s) => *s,
        })
        .collect::<Vec<_>>()
        .join("")
}

/// Locate the workspace root: walk up from `start` until a directory
/// holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under `crates/*/src`, workspace-relative with `/`
/// separators, sorted for stable output. (`tests/`, `examples/`, and
/// `vendor/` are harness/shim code and out of lint scope — see
/// ARCHITECTURE.md.)
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        }
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run the full lint pass over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in workspace_sources(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(lint_source(&rel, &src));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_allows() {
        let lexed = lex::lex("let a = b + 1; // qlint: allow(time-epoch-arith) — why\n");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Punct("+")));
        assert_eq!(lexed.allows, vec![(1, "time-epoch-arith".to_string())]);
    }

    #[test]
    fn char_literal_is_not_a_lifetime() {
        let lexed = lex::lex("let c = 'x'; fn f<'a>(v: &'a str) {}");
        let lits = lexed.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        let lifes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Life)
            .count();
        assert_eq!(lits, 1);
        assert_eq!(lifes, 2);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let findings = lint_source("crates/core/src/runtime.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn adjacency_matches_through_calls() {
        let hits = adjacent_hits(
            &lex::lex("let e = topo.epoch() + 1;").toks,
            &["+"],
            &["epoch"],
            &[],
        );
        assert_eq!(hits.len(), 1);
    }
}
