//! qlint: the workspace static lint pass.
//!
//! Usage: `cargo run -p qgraph-check --bin qlint [-- --json] [root]`
//!
//! Walks `crates/*/src` under the workspace root (auto-detected from
//! the current directory unless given), applies the project rules, and
//! prints findings — human-readable by default, one JSON object per
//! line with `--json`. Exit status 1 iff any finding.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: qlint [--json] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }
    let start = root_arg
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = qgraph_check::find_workspace_root(&start) else {
        eprintln!("qlint: no workspace root found above {}", start.display());
        return ExitCode::FAILURE;
    };

    let findings = qgraph_check::lint_workspace(&root);
    for f in &findings {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        if !json {
            let nrules = qgraph_check::rules::RULES.len();
            let nfiles = qgraph_check::workspace_sources(&root).len();
            eprintln!("qlint: clean — {nrules} rules over {nfiles} files");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("qlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
