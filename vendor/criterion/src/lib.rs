//! Vendored micro-benchmark harness: the `criterion` API subset this
//! workspace uses (`Criterion`, benchmark groups, `iter`/`iter_batched`,
//! the `criterion_group!`/`criterion_main!` macros). This build
//! environment has no network access to crates.io, so the workspace
//! vendors a stand-in that measures with `std::time::Instant` and prints
//! one mean-time line per benchmark — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the stand-in always runs one setup per measured invocation).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs closures under a timer.
pub struct Bencher {
    samples: usize,
    last: Option<BenchResult>,
}

#[derive(Clone, Copy, Debug)]
struct BenchResult {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, repeated enough times to smooth noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up once (also primes lazily-built state).
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        let budget = Duration::from_millis(200);
        while start.elapsed() < budget && iters < self.samples as u64 {
            black_box(f());
            iters += 1;
        }
        let mean = start.elapsed() / iters.max(1) as u32;
        self.last = Some(BenchResult { mean, iters });
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        let budget = Duration::from_millis(200);
        while spent < budget && iters < self.samples as u64 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        let mean = spent / iters.max(1) as u32;
        self.last = Some(BenchResult { mean, iters });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of measured invocations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        self.criterion.record(&self.name, id, b.last);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 50,
        }
    }

    /// Measure one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 50,
            last: None,
        };
        f(&mut b);
        self.record("", id, b.last);
        self
    }

    fn record(&mut self, group: &str, id: &str, result: Option<BenchResult>) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match result {
            Some(r) => println!("{label:<40} {:>12.3?} / iter ({} iters)", r.mean, r.iters),
            None => println!("{label:<40} (no measurement)"),
        }
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
