//! Microsecond point queries: the hub-label index plane end to end.
//!
//! Builds a pruned-landmark label index over a road network and installs
//! it on a `ThreadEngine`. Point-shaped queries (s→t distance,
//! reachability) are then answered at admission by a two-hop label
//! intersection instead of running a BSP traversal — same answers,
//! orders of magnitude less work. Edge churn is streamed in to show the
//! other half of the plane: every mutation barrier triggers an
//! incremental label repair (or a rebuild when the damage cascade grows
//! too large), and the index keeps serving across epochs.
//!
//! Run with: `cargo run --release --bin point_queries`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use qgraph_algo::{ReachPointProgram, SsspProgram};
use qgraph_core::{SystemConfig, ThreadEngine, Topology};
use qgraph_graph::VertexId;
use qgraph_index::{IndexConfig, LabelIndex};
use qgraph_partition::{HashPartitioner, Partitioner};
use qgraph_workload::{
    edge_churn, generate_point_queries, ChurnConfig, PairSkew, PointQuerySpec, PointWorkloadConfig,
    RoadNetworkConfig, RoadNetworkGenerator,
};

fn serve(engine: &mut ThreadEngine, specs: &[PointQuerySpec]) -> f64 {
    let start = Instant::now();
    for s in specs {
        if s.reach {
            engine.submit(ReachPointProgram::new(s.source, s.target));
        } else {
            engine.submit(SsspProgram::new(s.source, s.target));
        }
    }
    engine.run();
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let net = RoadNetworkGenerator::new(RoadNetworkConfig {
        num_cities: 3,
        vertices_per_city: 400,
        seed: 42,
        ..Default::default()
    })
    .generate();
    let graph = Arc::new(net.graph);
    println!(
        "road network: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Build the two-hop label index (sequential pruned landmark labeling,
    // highest-degree vertices ranked first).
    let build_start = Instant::now();
    let index = LabelIndex::build(
        &Topology::new(Arc::clone(&graph)),
        IndexConfig {
            damage_threshold: 0.6,
            ..IndexConfig::default()
        },
    );
    println!(
        "label index: {} entries ({:.1} per vertex) built in {:.1} ms",
        index.total_entries(),
        index.total_entries() as f64 / graph.num_vertices() as f64,
        build_start.elapsed().as_secs_f64() * 1e3,
    );

    let live: Vec<VertexId> = (0..graph.num_vertices() as u32).map(VertexId).collect();
    let specs = generate_point_queries(
        &live,
        &PointWorkloadConfig {
            count: 192,
            skew: PairSkew::Uniform,
            reach_fraction: 0.25,
            seed: 7,
        },
    );
    let parts = HashPartitioner::default().partition(&graph, 4);

    // The same stream through a traversal-only engine and an
    // index-serving engine; the speedup is the headline number.
    let mut traversal =
        ThreadEngine::with_config(Arc::clone(&graph), parts.clone(), SystemConfig::default());
    let trav_ms = serve(&mut traversal, &specs);
    traversal.shutdown();

    let mut engine = ThreadEngine::with_config(Arc::clone(&graph), parts, SystemConfig::default());
    engine.install_index(Box::new(index));
    let idx_ms = serve(&mut engine, &specs);

    let report = engine.report();
    let tis = report.time_in_system_percentiles();
    println!(
        "{} queries: traversal {:.1} ms, index {:.3} ms ({:.0}x)",
        specs.len(),
        trav_ms,
        idx_ms,
        trav_ms / idx_ms.max(1e-9),
    );
    println!(
        "index-served {} / traversal-served {}; time-in-system p50 {:.6}s p99 {:.6}s",
        report.index_served(),
        report.traversal_served(),
        tis.p50,
        tis.p99,
    );

    // Stream road churn into the same engine: each batch applies at a
    // mutation barrier and the installed index repairs itself there.
    for tm in edge_churn(&graph, &ChurnConfig::uniform(6, 4, 10.0, 23)) {
        engine.mutate(tm.batch);
        engine.drain();
    }
    for r in &engine.report().index_repairs {
        println!(
            "  epoch {}: {} root passes rerun, -{}/+{} labels{}",
            r.epoch,
            r.summary.roots_rerun,
            r.summary.labels_removed,
            r.summary.labels_added,
            if r.summary.rebuilt {
                " (full rebuild)"
            } else {
                ""
            },
        );
    }

    // The repaired index keeps serving point queries on the churned
    // graph — no stale answers, no fallback to traversal.
    let before = engine.report().index_served();
    let post = generate_point_queries(
        &live,
        &PointWorkloadConfig {
            count: 64,
            skew: PairSkew::Uniform,
            reach_fraction: 0.25,
            seed: 29,
        },
    );
    serve(&mut engine, &post);
    let report = engine.report();
    println!(
        "after churn (epoch {}): {} more point queries index-served, index valid through epoch {}",
        engine.epoch(),
        report.index_served() - before,
        engine.epoch(),
    );
    engine.shutdown();
}
