//! The discrete-event multi-query engine.
//!
//! [`SimEngine`] executes queries exactly as the real system would —
//! vertex functions, message routing, scope tracking, the MAPE adaptivity
//! loop — while *time* advances on the `qgraph-sim` virtual clock using
//! the cluster's compute/network cost models. Results are bit-identical
//! across runs for a fixed configuration, and latency decomposes into the
//! same three components as on the paper's testbeds: compute, network
//! transfer, and barrier synchronization (see `DESIGN.md` §2).
//!
//! The engine is **not generic over a program type**: each submitted
//! query is wrapped in a type-erased [`QueryTask`](crate::task::QueryTask)
//! at [`SimEngine::submit`], so one instance runs SSSP, POI, and
//! reachability queries concurrently. `submit` returns a typed
//! [`QueryHandle`] through which [`SimEngine::output`] recovers the
//! program's `Output` without any caller-visible downcasting.
//!
//! ## Execution model
//!
//! Each worker is a sequential resource processing one superstep task at a
//! time (FIFO); queueing across concurrent queries is what turns workload
//! imbalance into the paper's straggler effects. One query iteration:
//!
//! 1. barrier release → superstep tasks on all involved workers,
//! 2. each task: freeze inbox, charge compute cost, execute, route
//!    messages (free locally, network-priced across workers),
//! 3. when the last involved worker finishes → [`barrier::decide`]
//!    computes the next release (hybrid: free if fully local),
//! 4. no pending messages anywhere → the query completes.
//!
//! The controller triggers Q-cut when mean locality drops below Φ; the ILS
//! runs against a stats snapshot and its *result* is applied one virtual
//! ILS budget later under a global STOP/START barrier that quiesces the
//! workers, migrates scope vertices, and charges the bulk-move transfer.

use std::collections::VecDeque;
use std::sync::Arc;

use qgraph_graph::{Graph, MutationBatch, Topology, VertexId};
use qgraph_partition::Partitioning;
use qgraph_sim::{ClusterModel, EventQueue, SimTime};

use crate::barrier::{self, BarrierInput};
use crate::config::{BarrierMode, SystemConfig};
use crate::controller::{apply_mutation_epochs, Controller};
use crate::hb::{kind, Hb};
use crate::index_plane::PointIndex;
use crate::program::VertexProgram;
use crate::qcut::{migrate, run_qcut, IlsResult};
use crate::query::{OutcomeStatus, QueryHandle, QueryId, QueryOutcome, ServedBy};
use crate::report::{ActivitySample, EngineReport, RepartitionEvent};
use crate::sched::{Scheduler, Submission};
use crate::task::{Envelope, QueryTask, TypedTask};
use crate::trace::{cmd, outcome_code, Tracer};
use crate::worker::Worker;

#[derive(Clone, Debug)]
enum Event {
    /// A streamed query's virtual arrival time was reached: it enters the
    /// admission queue (see [`SimEngine::submit_when`]).
    Arrival { q: QueryId },
    /// Query `q` may run a superstep on worker `w`.
    TaskReady { q: QueryId, w: usize },
    /// Worker `w` finished computing query `q`'s superstep.
    TaskDone { q: QueryId, w: usize },
    /// Worker `w` finished serializing/sending its outgoing messages.
    SendDone { w: usize },
    /// Query `q`'s barrier released: start the next superstep.
    BarrierRelease { q: QueryId },
    /// The virtual ILS budget elapsed; apply the pending plan.
    IlsReady,
    /// A mutation batch's virtual application time was reached: stop the
    /// world at the next quiescent point and open a new graph epoch.
    MutationDue { m: usize },
    /// SharedGlobal mode: the cross-query round barrier released.
    RoundRelease,
    /// Workers are quiescent: migrate scope vertices (STOP barrier body).
    GlobalBarrierApply,
    /// Repartitioning finished: resume query execution (START barrier).
    GlobalBarrierEnd,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum QueryStatus {
    Queued,
    Running,
    Finished,
}

/// One submitted query: its erased task plus per-run bookkeeping. No
/// program types appear here — aggregates travel as [`Envelope`]s.
struct QueryRun {
    task: Arc<dyn QueryTask>,
    status: QueryStatus,
    /// Arrival: when the query entered the admission queue.
    queued_at: SimTime,
    /// Absolute deadline ([`crate::AdmissionPolicy::Deadline`]), if any.
    deadline: Option<SimTime>,
    /// Admission: when a closed-loop slot freed and execution began.
    submitted_at: SimTime,
    /// Graph epoch at admission (outcome attribution).
    first_epoch: u64,
    iteration: u32,
    local_iterations: u32,
    vertex_updates: u64,
    remote_messages: u64,
    remote_messages_pre_combine: u64,
    remote_batches: u64,
    /// Degree-of-parallelism budget ([`crate::DopPolicy::budget`], fixed
    /// at admission): at most this many of a superstep's per-partition
    /// tasks run concurrently.
    dop: usize,
    /// Involved workers of the current superstep whose dispatch is held
    /// back by the DoP budget; released one per completing task.
    deferred: VecDeque<usize>,
    /// Per-(query, partition) compute tasks dispatched so far.
    tasks: u64,
    /// Max over supersteps of `min(dop, involved)`.
    effective_dop: u32,
    // Per-superstep bookkeeping.
    remaining: usize,
    involved_cur: Vec<usize>,
    compute_done_max: SimTime,
    msg_arrival_max: SimTime,
    crossed: bool,
    last_done_raw: SimTime,
    agg_prev: Envelope,
    agg_acc: Envelope,
}

struct WorkerSched {
    queue: VecDeque<QueryId>,
    running: Option<QueryId>,
    busy_until: SimTime,
}

/// The deterministic multi-query engine. See the module docs.
pub struct SimEngine {
    topology: Topology,
    cluster: ClusterModel,
    cfg: SystemConfig,
    partitioning: Partitioning,
    workers: Vec<Worker>,
    sched: Vec<WorkerSched>,
    /// The simulated elastic pool's thread count
    /// ([`SystemConfig::pool_threads`]; 0 = one per partition): a global
    /// concurrency cap over the per-worker FIFO queues. With fewer
    /// threads than partitions, a freed thread picks up *any* queued
    /// partition — the work-conserving behavior the real pool exhibits.
    pool_width: usize,
    /// Worker tasks (compute or send) currently occupying pool threads.
    pool_busy: usize,
    /// Compute tasks completed (the sim's [`crate::PoolCounters::tasks`];
    /// steals and idle waits are physical-pool phenomena and stay 0
    /// here).
    pool_tasks: u64,
    events: EventQueue<Event>,
    queries: Vec<QueryRun>,
    outputs: Vec<Option<Envelope>>,
    /// The policy-ordered admission queue (arrived, not yet admitted).
    scheduler: Scheduler,
    in_flight: usize,
    /// STOP barrier in progress: no new barrier releases or query
    /// dispatches; in-flight supersteps drain to quiescence first.
    paused: bool,
    /// `TaskReady` dispatches scheduled but not yet delivered. Quiescence
    /// requires this to reach zero: a control message racing the STOP
    /// barrier would otherwise start a superstep mid-migration.
    inflight_ready: usize,
    /// The STOP barrier is waiting for the workers to drain.
    awaiting_quiesce: bool,
    deferred_releases: Vec<QueryId>,
    pending_plan: Option<(IlsResult, SimTime)>,
    /// The ILS budget has elapsed: the pending plan may be applied at the
    /// next barrier's migration phase.
    plan_ready: bool,
    /// Submitted mutation batches (taken when applied).
    mutations: Vec<Option<MutationBatch>>,
    /// Batches whose virtual application time has been reached, waiting
    /// for the stop-the-world barrier to apply them.
    due_mutations: Vec<usize>,
    /// The installed label index (the index plane): consulted at
    /// admission for eligible point queries, repaired at every mutation
    /// barrier.
    index: Option<Box<dyn PointIndex>>,
    controller: Controller,
    report: EngineReport,
    /// Per-worker vertex updates within the current activity sub-window
    /// (feeds the controller's straggler watch).
    activity_window: Vec<u64>,
    activity_window_start: SimTime,
    activity_window_len: SimTime,
    last_activity_imbalance: f64,
    /// SharedGlobal mode: queries whose iteration finished and who wait
    /// for the cross-query round barrier.
    round_waiting: Vec<QueryId>,
    /// SharedGlobal mode: queries still computing in the current round.
    round_outstanding: usize,
    /// SharedGlobal mode: release time of the round (max over queries).
    round_release: SimTime,
    /// Happens-before auditor (no-op unless the `check-hb` feature is
    /// on): stamps dispatches, quiesce windows, and epoch publications.
    hb: Hb,
    /// Structured event recorder (no-op unless the `trace` feature *and*
    /// [`SystemConfig::trace`] are on): stamps the same vocabulary the
    /// thread runtime stamps, on the virtual clock. Lanes are partition
    /// indices — the sim's analogue of pool-thread identity.
    tracer: Tracer,
    /// Test hook: make [`SimEngine::is_quiescent`] ignore in-flight
    /// `TaskReady` dispatches, reintroducing the pre-fix quiesce race
    /// so the auditor's detection of it stays regression-tested.
    #[cfg(feature = "check-hb")]
    hb_ignore_inflight_ready: bool,
}

impl SimEngine {
    /// Create an engine over `graph`, simulated on `cluster`, starting from
    /// `partitioning`.
    ///
    /// # Panics
    /// Panics if the partitioning does not match the graph or cluster.
    pub fn new(
        graph: Arc<Graph>,
        cluster: ClusterModel,
        partitioning: Partitioning,
        cfg: SystemConfig,
    ) -> Self {
        assert_eq!(
            partitioning.num_vertices(),
            graph.num_vertices(),
            "partitioning does not cover the graph"
        );
        assert_eq!(
            partitioning.num_workers(),
            cluster.num_workers,
            "partitioning and cluster disagree on worker count"
        );
        let k = cluster.num_workers;
        // Batch accounting (`remote_batches`) uses the config's cap, and
        // pricing (`transfer_cost`) uses the network model's — they must
        // agree, or the reported batch counts would diverge from what the
        // cost model charges (and from the thread runtime's accounting).
        assert_eq!(
            cfg.batch_max_msgs, cluster.network.batch_max_msgs,
            "SystemConfig::batch_max_msgs must match the cluster \
             NetworkModel::batch_max_msgs"
        );
        let workers: Vec<Worker> = (0..k)
            .map(|w| Worker::configured(w, cfg.combiners, cfg.batch_max_msgs))
            .collect();
        // Activity sub-window: an eighth of the monitoring window μ.
        let activity_window_len = SimTime::from_secs_f64(
            cfg.qcut
                .as_ref()
                .map(|q| q.monitoring_window_secs / 8.0)
                .unwrap_or(f64::MAX / 1e10),
        );
        // Stamp the initial topology (epoch 0) and partitioning as
        // published by the controller before anything can read them.
        let hb = Hb::new(k);
        hb.publish_topology(0, 0);
        hb.publish_partitioning(0);
        let pool_width = match cfg.pool_threads {
            0 => k,
            n => n,
        };
        let tracer = Tracer::new(k, cfg.trace_ring_capacity, cfg.trace);
        SimEngine {
            hb,
            tracer,
            #[cfg(feature = "check-hb")]
            hb_ignore_inflight_ready: false,
            topology: Topology::new(graph),
            cluster,
            controller: Controller::new(cfg.qcut.clone()),
            scheduler: Scheduler::bounded(cfg.admission.clone(), cfg.max_queued),
            cfg,
            partitioning,
            workers,
            sched: (0..k)
                .map(|_| WorkerSched {
                    queue: VecDeque::new(),
                    running: None,
                    busy_until: SimTime::ZERO,
                })
                .collect(),
            pool_width,
            pool_busy: 0,
            pool_tasks: 0,
            events: EventQueue::new(),
            queries: Vec::new(),
            outputs: Vec::new(),
            in_flight: 0,
            paused: false,
            inflight_ready: 0,
            awaiting_quiesce: false,
            deferred_releases: Vec::new(),
            pending_plan: None,
            plan_ready: false,
            mutations: Vec::new(),
            due_mutations: Vec::new(),
            index: None,
            report: EngineReport::default(),
            activity_window: vec![0; k],
            activity_window_start: SimTime::ZERO,
            activity_window_len,
            last_activity_imbalance: 0.0,
            round_waiting: Vec::new(),
            round_outstanding: 0,
            round_release: SimTime::ZERO,
        }
    }

    /// Enqueue a query of any program type; one engine instance runs
    /// heterogeneous queries concurrently. It starts once a closed-loop
    /// slot is free (`max_parallel_queries` in flight at a time, the
    /// paper's batches). Returns a typed handle for [`SimEngine::output`].
    pub fn submit<P: VertexProgram>(&mut self, program: P) -> QueryHandle<P> {
        QueryHandle::new(self.submit_task(Arc::new(TypedTask::new(program))))
    }

    /// Submit with explicit arrival/deadline options: a [`Submission`]
    /// with `at_secs` models an *open-loop streaming* arrival — the query
    /// joins the admission queue only when the virtual clock reaches that
    /// time (an arrival event), exactly like a client submitting against a
    /// live serving engine. A `deadline_secs` feeds the
    /// [`crate::AdmissionPolicy::Deadline`] policy.
    pub fn submit_when<P: VertexProgram>(
        &mut self,
        program: P,
        submission: Submission,
    ) -> QueryHandle<P> {
        QueryHandle::new(self.submit_task_when(Arc::new(TypedTask::new(program)), submission))
    }

    /// Shorthand for [`SimEngine::submit_when`] with only an arrival time.
    pub fn submit_at<P: VertexProgram>(&mut self, program: P, at_secs: f64) -> QueryHandle<P> {
        self.submit_when(program, Submission::at(at_secs))
    }

    /// Type-erased submission backing [`SimEngine::submit`] (and the
    /// [`crate::Engine`] trait).
    pub fn submit_task(&mut self, task: Arc<dyn QueryTask>) -> QueryId {
        self.submit_task_when(task, Submission::default())
    }

    /// Type-erased submission with arrival/deadline options (see
    /// [`SimEngine::submit_when`]).
    pub fn submit_task_when(
        &mut self,
        task: Arc<dyn QueryTask>,
        submission: Submission,
    ) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        let now = self.events.now();
        // An arrival in the past clamps to now: the clock never rewinds.
        let arrival = submission
            .at_secs
            .map(|t| SimTime::from_secs_f64(t).max(now))
            .unwrap_or(now);
        let deadline = submission
            .deadline_secs
            .map(|d| arrival + SimTime::from_secs_f64(d));
        let program = task.program_name();
        self.queries.push(QueryRun {
            agg_prev: task.aggregate_identity(),
            agg_acc: task.aggregate_identity(),
            task,
            status: QueryStatus::Queued,
            queued_at: arrival,
            deadline,
            submitted_at: SimTime::ZERO,
            first_epoch: 0,
            iteration: 0,
            local_iterations: 0,
            vertex_updates: 0,
            remote_messages: 0,
            remote_messages_pre_combine: 0,
            remote_batches: 0,
            dop: 1,
            deferred: VecDeque::new(),
            tasks: 0,
            effective_dop: 0,
            remaining: 0,
            involved_cur: Vec::new(),
            compute_done_max: SimTime::ZERO,
            msg_arrival_max: SimTime::ZERO,
            crossed: false,
            last_done_raw: SimTime::ZERO,
        });
        self.outputs.push(None);
        if submission.at_secs.is_some() && arrival > now {
            self.events.schedule(arrival, Event::Arrival { q: id });
        } else {
            self.tracer.admitted(arrival.as_secs_f64(), u64::from(id.0));
            if !self.scheduler.push(id, program, arrival, deadline) {
                self.reject_query(arrival, id);
            }
        }
        id
    }

    /// Schedule a [`MutationBatch`] to apply at virtual time `at_secs`
    /// (clamped to now): when the clock reaches it, the engine stops the
    /// world at the next quiescent point, applies the batch atomically,
    /// and opens a new graph epoch — in-flight queries park at their
    /// barriers and resume against the mutated topology, exactly like the
    /// Q-cut stop-the-world phase. Batches due at the same barrier apply
    /// in submission order.
    ///
    /// # Panics
    /// Rejects the batch at submission (see [`MutationBatch::validate`])
    /// if any op carries a NaN, negative, or infinite weight — failing
    /// here, rather than at the barrier, keeps the error on the caller's
    /// stack.
    pub fn mutate_at(&mut self, batch: MutationBatch, at_secs: f64) {
        if let Err(e) = batch.validate() {
            panic!("rejected mutation batch: {e}");
        }
        let at = SimTime::from_secs_f64(at_secs).max(self.events.now());
        let m = self.mutations.len();
        self.mutations.push(Some(batch));
        self.events.schedule(at, Event::MutationDue { m });
    }

    /// Apply a [`MutationBatch`] at the next quiescent point (shorthand
    /// for [`SimEngine::mutate_at`] with the current virtual time).
    pub fn mutate(&mut self, batch: MutationBatch) {
        let now = self.events.now().as_secs_f64();
        self.mutate_at(batch, now);
    }

    /// Run until every submitted query (including future [`Event::Arrival`]
    /// submissions) has finished. Returns the cumulative report; the
    /// window this call covers is the last entry of
    /// [`EngineReport::runs`].
    pub fn run(&mut self) -> &EngineReport {
        // Run boundary: a fresh activity sub-window, so a trigger early in
        // this run never measures imbalance over a window spanning the
        // idle gap since the previous run.
        let run_started = self.events.now();
        self.activity_window_start = run_started;
        self.activity_window.iter_mut().for_each(|a| *a = 0);
        self.last_activity_imbalance = 0.0;

        self.dispatch_pending();
        while let Some(ev) = self.events.pop() {
            let now = ev.at;
            match ev.payload {
                Event::Arrival { q } => self.on_arrival(q),
                Event::TaskReady { q, w } => {
                    self.inflight_ready -= 1;
                    self.hb.token_close(q.0, kind::READY);
                    self.on_task_ready(q, w);
                }
                Event::TaskDone { q, w } => self.on_task_done(now, q, w),
                Event::SendDone { w } => self.on_send_done(now, w),
                Event::BarrierRelease { q } => self.on_barrier_release(now, q),
                Event::RoundRelease => self.on_round_release(now),
                Event::IlsReady => self.on_ils_ready(now),
                Event::MutationDue { m } => self.on_mutation_due(m),
                Event::GlobalBarrierApply => self.on_global_apply(now),
                Event::GlobalBarrierEnd => self.on_global_end(now),
            }
            if self.events.is_empty() {
                self.dispatch_pending();
            }
        }
        self.report.finished_at_secs = self.events.now().as_secs_f64();
        // Pool accounting for the sim: steals and idle-waits are physical
        // phenomena of the real pool and stay 0 here; `tasks` counts the
        // same per-(query, partition) units the thread runtime counts.
        self.report.admission_policy = self.cfg.admission.label().to_string();
        self.tracer.drain();
        self.report.trace.absorb(&self.tracer);
        let pool_at_close = crate::report::PoolCounters {
            threads: self.pool_width,
            tasks: self.pool_tasks,
            steals: 0,
            idle_waits: 0,
        };
        self.report.close_run(
            run_started.as_secs_f64(),
            self.report.finished_at_secs,
            pool_at_close,
        );
        &self.report
    }

    /// The output of a finished query, recovered through its typed handle.
    pub fn output<P: VertexProgram>(&self, handle: &QueryHandle<P>) -> Option<&P::Output> {
        self.output_as::<P>(handle.id())
    }

    /// Typed output lookup by raw [`QueryId`] (for callers that index
    /// queries positionally); `None` if unfinished or if `P` is not the
    /// program type the query was submitted with.
    pub fn output_as<P: VertexProgram>(&self, q: QueryId) -> Option<&P::Output> {
        self.output_envelope(q)?.downcast_ref::<P::Output>()
    }

    /// Erased output access (backs the [`crate::Engine`] trait).
    pub fn output_envelope(&self, q: QueryId) -> Option<&(dyn std::any::Any + Send)> {
        self.outputs.get(q.index())?.as_deref()
    }

    /// Take ownership of a finished query's output.
    pub fn take_output<P: VertexProgram>(&mut self, handle: &QueryHandle<P>) -> Option<P::Output> {
        let slot = self.outputs.get_mut(handle.id().index())?;
        // Only take the envelope if it downcasts to the handle's type.
        slot.as_ref()?.downcast_ref::<P::Output>()?;
        slot.take()
            .and_then(|b| b.downcast::<P::Output>().ok())
            .map(|b| *b)
    }

    /// The measurement report (also returned by [`SimEngine::run`]).
    pub fn report(&self) -> &EngineReport {
        &self.report
    }

    /// The current vertex→worker assignment (mutated by repartitionings).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.events.now().as_secs_f64()
    }

    /// The evolving graph view queries currently execute against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current graph epoch (mutation batches applied so far).
    pub fn epoch(&self) -> u64 {
        self.topology.epoch()
    }

    /// Install a label index (see [`crate::index_plane::PointIndex`]):
    /// from now on, eligible point queries popping off the admission
    /// queue are answered by label intersection instead of traversal —
    /// provided the index stays repaired through the admission epoch.
    /// Replaces any previously installed index. The index receives
    /// [`SystemConfig::index_build_threads`](crate::SystemConfig) as its
    /// parallelism hint for rebuild work.
    pub fn install_index(&mut self, mut index: Box<dyn PointIndex>) {
        index.set_parallelism(self.cfg.index_build_threads);
        self.index = Some(index);
    }

    /// Remove and return the installed label index, if any (queries fall
    /// back to the traversal path afterwards).
    pub fn take_index(&mut self) -> Option<Box<dyn PointIndex>> {
        self.index.take()
    }

    /// The installed label index, if any.
    pub fn index(&self) -> Option<&dyn PointIndex> {
        self.index.as_deref()
    }

    // ------------------------------------------------------------------
    // Submission / dispatch
    // ------------------------------------------------------------------

    /// A streamed query's arrival time was reached: admission-queue it.
    /// During a STOP barrier the query parks in the queue exactly like a
    /// resident one — `dispatch_pending` is gated on `paused`.
    fn on_arrival(&mut self, q: QueryId) {
        let run = &self.queries[q.index()];
        self.tracer
            .admitted(run.queued_at.as_secs_f64(), u64::from(q.0));
        if !self
            .scheduler
            .push(q, run.task.program_name(), run.queued_at, run.deadline)
        {
            let at = run.queued_at;
            self.reject_query(at, q);
            return;
        }
        self.dispatch_pending();
    }

    /// Bounded-queue backpressure: the waiting queue is full, so the
    /// submission bounces with a distinct outcome instead of executing.
    fn reject_query(&mut self, at: SimTime, q: QueryId) {
        let epoch = self.topology.epoch();
        let run = &mut self.queries[q.index()];
        debug_assert_eq!(run.status, QueryStatus::Queued);
        debug_assert_eq!(run.queued_at, at, "rejections happen at arrival");
        run.status = QueryStatus::Finished;
        self.report.outcomes.push(QueryOutcome::rejected(
            q,
            run.task.program_name(),
            at,
            epoch,
        ));
        self.tracer
            .outcome(at.as_secs_f64(), u64::from(q.0), outcome_code::REJECTED);
    }

    fn dispatch_pending(&mut self) {
        while !self.paused && self.in_flight < self.cfg.max_parallel_queries {
            let Some(entry) = self.scheduler.pop() else {
                break;
            };
            self.start_query(entry.q);
        }
    }

    fn start_query(&mut self, q: QueryId) {
        let now = self.events.now();
        let task = Arc::clone(&self.queries[q.index()].task);

        // Index fast path: an eligible point query admitted at epoch `e`
        // is answered from the labels when the installed index is
        // repaired through `e` — it completes at admission without
        // occupying a closed-loop slot or touching a worker.
        if let Some(output) = crate::sched::try_index_path(
            task.as_ref(),
            self.index.as_deref(),
            self.topology.epoch(),
        ) {
            let epoch = self.topology.epoch();
            self.hb.outcome_epoch(0, epoch);
            let run = &mut self.queries[q.index()];
            run.status = QueryStatus::Finished;
            run.submitted_at = now;
            run.first_epoch = epoch;
            let outcome = QueryOutcome {
                id: q,
                program: task.program_name(),
                status: OutcomeStatus::Completed,
                served_by: ServedBy::Index,
                queued_at: run.queued_at,
                submitted_at: now,
                completed_at: now,
                iterations: 0,
                local_iterations: 0,
                vertex_updates: 0,
                remote_messages: 0,
                remote_messages_pre_combine: 0,
                remote_batches: 0,
                scope_size: 0,
                tasks: 0,
                effective_dop: 0,
                first_epoch: epoch,
                last_epoch: epoch,
            };
            self.outputs[q.index()] = Some(output);
            self.report.outcomes.push(outcome);
            self.tracer.outcome(
                now.as_secs_f64(),
                u64::from(q.0),
                outcome_code::INDEX_SERVED,
            );
            return;
        }

        let batches = {
            let partitioning = &self.partitioning;
            let route = |v: VertexId| partitioning.worker_of(v).index();
            task.initial_batches(&self.topology, &route, self.cfg.combiners)
        };
        let involved: Vec<usize> = batches.iter().map(|(w, _)| *w).collect();

        // Admission fixes the query's DoP budget for its whole lifetime.
        let dop = self.cfg.dop.budget(task.as_ref(), self.pool_width).max(1);
        let run = &mut self.queries[q.index()];
        run.status = QueryStatus::Running;
        run.submitted_at = now;
        run.first_epoch = self.topology.epoch();
        run.last_done_raw = now;
        run.dop = dop;
        self.in_flight += 1;

        if involved.is_empty() {
            // A query with no initial messages completes immediately.
            self.complete_query(now, q);
            return;
        }
        self.queries[q.index()].involved_cur = involved.clone();
        self.queries[q.index()].remaining = involved.len();
        self.queries[q.index()].compute_done_max = SimTime::ZERO;
        self.queries[q.index()].msg_arrival_max = SimTime::ZERO;
        self.queries[q.index()].crossed = false;
        self.queries[q.index()].tasks = involved.len() as u64;
        self.queries[q.index()].effective_dop = involved.len().min(dop) as u32;
        if self.cfg.barrier_mode == BarrierMode::SharedGlobal {
            self.round_outstanding += 1;
        }

        for (i, (w, batch)) in batches.into_iter().enumerate() {
            self.workers[w].deliver(task.as_ref(), q, batch);
            // Freeze at submission: superstep 0's input is exactly the
            // initial message set (deferred partitions included — BSP
            // isolation is what makes budgeted execution output-identical).
            self.workers[w].freeze(q);
            if i < dop {
                // executeQuery(q): controller → worker dispatch.
                let at = now + self.cluster.control_cost_to_controller(w);
                self.inflight_ready += 1;
                self.hb.token_open(q.0, kind::READY);
                self.events.schedule(at, Event::TaskReady { q, w });
            } else {
                self.tracer
                    .defer(now.as_secs_f64(), u64::from(q.0), w as u32);
                self.queries[q.index()].deferred.push_back(w);
            }
        }
    }

    // ------------------------------------------------------------------
    // Task scheduling on workers
    // ------------------------------------------------------------------

    fn on_task_ready(&mut self, q: QueryId, w: usize) {
        // Pre-frozen supersteps always run — during a STOP barrier they
        // are exactly the in-flight work the barrier drains.
        self.hb.token_open(q.0, kind::TASK);
        self.sched[w].queue.push_back(q);
        self.try_start(w);
    }

    fn try_start(&mut self, w: usize) {
        // A partition runs at most one task at a time (actor model), and
        // the elastic pool caps how many partitions compute at once.
        if self.sched[w].running.is_some() || self.pool_busy >= self.pool_width {
            return;
        }
        let Some(q) = self.sched[w].queue.pop_front() else {
            return;
        };
        let now = self.events.now();
        let (active, msgs) = self.workers[w].frozen_counts(q);
        let cost = self.cluster.compute.superstep_cost(active, msgs);
        self.sched[w].running = Some(q);
        self.sched[w].busy_until = now + cost;
        self.pool_busy += 1;
        self.tracer.task_begin(
            now.as_secs_f64(),
            w as u32,
            u64::from(q.0),
            w as u32,
            cmd::STEP,
            false,
        );
        self.events.schedule(now + cost, Event::TaskDone { q, w });
    }

    /// A pool thread freed up. The thread is not bound to the partition
    /// it just ran, so scan every worker queue (index order — the sim's
    /// deterministic stand-in for the physical pool's affinity-then-steal
    /// scan) for the next startable task.
    fn sweep_ready(&mut self) {
        for w in 0..self.sched.len() {
            if self.pool_busy >= self.pool_width {
                return;
            }
            self.try_start(w);
        }
    }

    fn on_task_done(&mut self, now: SimTime, q: QueryId, w: usize) {
        debug_assert_eq!(self.sched[w].running, Some(q));

        // Split borrows: the routing closure reads the partitioning while
        // the worker is mutated.
        let task = Arc::clone(&self.queries[q.index()].task);
        let run = &self.queries[q.index()];
        let partitioning = &self.partitioning;
        let route = |v: VertexId| partitioning.worker_of(v).index();
        let (stats, agg, remote) =
            self.workers[w].execute(q, task.as_ref(), &self.topology, &run.agg_prev, &route);

        self.report.activity.push(ActivitySample {
            t: now.as_secs_f64(),
            worker: w,
            executed: stats.executed as u64,
        });
        self.record_activity(now, w, stats.executed as u64);

        // Serialization occupies this worker; the wire time then delays
        // the messages further.
        let send_cpu = self.cluster.network.serialize_cost(stats.remote_deliveries);
        let sent_at = now + send_cpu;
        let mut msg_arrival_max = SimTime::ZERO;
        let mut crossed = false;
        for (w2, batch) in remote {
            let arrival = sent_at + self.cluster.message_cost(w, w2, batch.len());
            msg_arrival_max = msg_arrival_max.max(arrival);
            crossed = true;
            self.workers[w2].deliver(task.as_ref(), q, batch);
        }

        let run = &mut self.queries[q.index()];
        run.vertex_updates += stats.executed as u64;
        run.remote_messages += stats.remote_deliveries as u64;
        run.remote_messages_pre_combine += stats.remote_pre_combine as u64;
        run.remote_batches += stats.remote_batches as u64;
        run.compute_done_max = run.compute_done_max.max(sent_at);
        run.last_done_raw = run.last_done_raw.max(sent_at);
        run.msg_arrival_max = run.msg_arrival_max.max(msg_arrival_max);
        run.crossed |= crossed;
        task.aggregate_combine(&mut run.agg_acc, &agg);
        run.remaining -= 1;
        self.pool_tasks += 1;
        self.tracer.task_end(
            now.as_secs_f64(),
            w as u32,
            u64::from(q.0),
            w as u32,
            cmd::STEP,
            stats.executed as u64,
        );

        // Elastic DoP: a finished task frees one unit of this query's
        // budget — release the next deferred partition, priced as a fresh
        // controller→worker dispatch. This runs even mid STOP-barrier
        // drain: the superstep must complete before the engine can
        // quiesce, exactly like the pre-frozen tasks already queued.
        if let Some(w_next) = self.queries[q.index()].deferred.pop_front() {
            self.tracer
                .defer_release(now.as_secs_f64(), u64::from(q.0), w_next as u32);
            let at = now + self.cluster.control_cost_to_controller(w_next);
            self.inflight_ready += 1;
            self.hb.token_open(q.0, kind::READY);
            self.events.schedule(at, Event::TaskReady { q, w: w_next });
        }

        if self.queries[q.index()].remaining == 0 {
            self.on_superstep_complete(now, q);
        }
        if crossed {
            // Worker stays busy until the socket push completes — the
            // pool thread serializes, so it stays occupied too.
            self.sched[w].busy_until = sent_at;
            self.events.schedule(sent_at, Event::SendDone { w });
        } else {
            self.hb.token_close(q.0, kind::TASK);
            self.sched[w].running = None;
            self.pool_busy -= 1;
            self.sweep_ready();
            self.maybe_quiesced(now);
        }
    }

    fn on_send_done(&mut self, now: SimTime, w: usize) {
        debug_assert!(self.sched[w].running.is_some());
        if let Some(q) = self.sched[w].running {
            self.hb.token_close(q.0, kind::TASK);
        }
        self.sched[w].running = None;
        self.pool_busy -= 1;
        self.sweep_ready();
        self.maybe_quiesced(now);
    }

    /// If a STOP barrier is waiting and the workers have drained, start
    /// the migration phase.
    fn maybe_quiesced(&mut self, now: SimTime) {
        if !self.awaiting_quiesce || !self.is_quiescent() {
            return;
        }
        self.awaiting_quiesce = false;
        let max_ctl = self.max_control_cost();
        self.events
            .schedule(now + max_ctl, Event::GlobalBarrierApply);
    }

    fn is_quiescent(&self) -> bool {
        #[cfg(feature = "check-hb")]
        let ready_drained = self.inflight_ready == 0 || self.hb_ignore_inflight_ready;
        #[cfg(not(feature = "check-hb"))]
        let ready_drained = self.inflight_ready == 0;
        ready_drained
            && self
                .sched
                .iter()
                .all(|s| s.running.is_none() && s.queue.is_empty())
    }

    /// Test hook (`check-hb` only): reintroduce the quiesce race the
    /// `inflight_ready` count fixed — [`SimEngine::is_quiescent`] stops
    /// counting scheduled-but-undelivered `TaskReady` dispatches, so a
    /// stop-the-world barrier can fire with control messages in flight.
    /// Exists solely so the regression suite can assert the
    /// happens-before auditor catches that race; never enable otherwise.
    #[cfg(feature = "check-hb")]
    #[doc(hidden)]
    pub fn hb_test_reintroduce_quiesce_race(&mut self) {
        self.hb_ignore_inflight_ready = true;
    }

    fn max_control_cost(&self) -> SimTime {
        (0..self.cluster.num_workers)
            .map(|w| self.cluster.control_cost_to_controller(w))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    fn on_superstep_complete(&mut self, now: SimTime, q: QueryId) {
        debug_assert!(
            self.queries[q.index()].deferred.is_empty(),
            "superstep barrier with deferred tasks unreleased"
        );
        self.tracer
            .superstep_done(now.as_secs_f64(), u64::from(q.0));
        let involved_next: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.workers[w].has_pending(q))
            .collect();

        let run = &mut self.queries[q.index()];
        let task = Arc::clone(&run.task);
        let decision = barrier::decide(
            &BarrierInput {
                mode: self.cfg.barrier_mode,
                compute_done: run.compute_done_max,
                msg_arrival: run.msg_arrival_max,
                involved_cur: &run.involved_cur,
                involved_next: &involved_next,
                crossed: run.crossed,
                stats_extra: !self.cfg.stats_piggyback,
            },
            &self.cluster,
        );

        run.iteration += 1;
        if decision.is_local {
            run.local_iterations += 1;
        }
        let combined = std::mem::replace(&mut run.agg_acc, task.aggregate_identity());
        if task.aggregate_sticky() {
            task.aggregate_combine(&mut run.agg_prev, &combined);
        } else {
            run.agg_prev = combined;
        }
        let terminate = involved_next.is_empty() || task.should_terminate(&run.agg_prev);

        let shared = self.cfg.barrier_mode == BarrierMode::SharedGlobal;
        if shared {
            self.round_outstanding -= 1;
        }
        if terminate {
            let at = self.queries[q.index()].last_done_raw;
            self.complete_query(at.max(now), q);
        } else if shared {
            // Traditional BSP: park the query until the slowest query of
            // this round has also synchronized.
            self.round_waiting.push(q);
            self.round_release = self.round_release.max(decision.release.max(now));
        } else {
            let release = decision.release.max(now);
            self.events.schedule(release, Event::BarrierRelease { q });
        }
        if shared && self.round_outstanding == 0 && !self.round_waiting.is_empty() {
            self.events
                .schedule(self.round_release.max(now), Event::RoundRelease);
        }
        self.maybe_trigger_qcut(now);
    }

    /// SharedGlobal mode: the cross-query round barrier fired — release
    /// every parked query at once.
    fn on_round_release(&mut self, now: SimTime) {
        let qs = std::mem::take(&mut self.round_waiting);
        self.round_release = SimTime::ZERO;
        for q in qs {
            self.on_barrier_release(now, q);
        }
    }

    fn on_barrier_release(&mut self, now: SimTime, q: QueryId) {
        if self.paused {
            self.tracer.park(now.as_secs_f64(), u64::from(q.0));
            self.deferred_releases.push(q);
            return;
        }
        // Re-derive the involved set: repartitioning may have migrated
        // pending messages while this release was deferred.
        let involved: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.workers[w].has_pending(q))
            .collect();
        if involved.is_empty() {
            self.complete_query(now, q);
            return;
        }
        let dop = {
            let run = &mut self.queries[q.index()];
            run.involved_cur = involved.clone();
            run.remaining = involved.len();
            run.compute_done_max = SimTime::ZERO;
            run.msg_arrival_max = SimTime::ZERO;
            run.crossed = false;
            run.tasks += involved.len() as u64;
            run.effective_dop = run.effective_dop.max(involved.len().min(run.dop) as u32);
            run.dop
        };
        if self.cfg.barrier_mode == BarrierMode::SharedGlobal {
            self.round_outstanding += 1;
        }
        for (i, w) in involved.into_iter().enumerate() {
            // All involved workers freeze at the same release instant: the
            // superstep's input is sealed before any of them computes —
            // including the partitions the DoP budget holds back, which is
            // why deferred execution stays output-identical.
            self.workers[w].freeze(q);
            if i < dop {
                self.on_task_ready(q, w);
            } else {
                self.tracer
                    .defer(now.as_secs_f64(), u64::from(q.0), w as u32);
                self.queries[q.index()].deferred.push_back(w);
            }
        }
    }

    fn complete_query(&mut self, at: SimTime, q: QueryId) {
        let run = &mut self.queries[q.index()];
        debug_assert_ne!(run.status, QueryStatus::Finished);
        run.status = QueryStatus::Finished;
        let task = Arc::clone(&run.task);
        self.in_flight -= 1;

        // Gather the locals the query touched, across workers; the scope
        // is streamed into one buffer (visitor, no per-worker allocation)
        // for the controller before finalize consumes the locals.
        let mut locals = Vec::new();
        let mut scope: Vec<VertexId> = Vec::new();
        for w in self.workers.iter_mut() {
            if let Some(local) = w.take_local(q) {
                local.for_each_scope_vertex(&mut |v| scope.push(v));
                locals.push(local);
            }
        }
        let run = &self.queries[q.index()];
        // The outcome is stamped with the current epoch: that epoch's
        // publication must be ordered before this point.
        self.hb.outcome_epoch(0, self.topology.epoch());
        let outcome = QueryOutcome {
            id: q,
            program: task.program_name(),
            status: OutcomeStatus::Completed,
            served_by: ServedBy::Traversal,
            queued_at: run.queued_at,
            submitted_at: run.submitted_at,
            completed_at: at,
            iterations: run.iteration,
            local_iterations: run.local_iterations,
            vertex_updates: run.vertex_updates,
            remote_messages: run.remote_messages,
            remote_messages_pre_combine: run.remote_messages_pre_combine,
            remote_batches: run.remote_batches,
            scope_size: scope.len() as u64,
            tasks: run.tasks,
            effective_dop: run.effective_dop,
            first_epoch: run.first_epoch,
            last_epoch: self.topology.epoch(),
        };
        self.outputs[q.index()] = Some(task.finalize(&self.topology, locals));
        self.report.outcomes.push(outcome);
        self.tracer
            .outcome(at.as_secs_f64(), u64::from(q.0), outcome_code::COMPLETED);
        self.controller.record_finished_scope(q, scope, at);
        self.controller.expire(at);
        self.dispatch_pending();
    }

    // ------------------------------------------------------------------
    // Adaptivity (MAPE loop)
    // ------------------------------------------------------------------

    /// Roll the activity sub-window and accumulate this superstep's work.
    fn record_activity(&mut self, now: SimTime, w: usize, executed: u64) {
        // Saturating comparison: with Q-cut off the window length is
        // effectively infinite and `start + len` would overflow.
        if now.saturating_sub(self.activity_window_start) >= self.activity_window_len {
            let total: u64 = self.activity_window.iter().sum();
            // Guard, don't unwrap: with an aggressive trigger cadence the
            // window can roll before any sample landed (or be evaluated on
            // a degenerate worker set) — an empty/zero window simply
            // carries no imbalance signal.
            let max = self.activity_window.iter().copied().max().unwrap_or(0);
            if total > 0 && max > 0 {
                let mean = total as f64 / self.activity_window.len() as f64;
                self.last_activity_imbalance = max as f64 / mean - 1.0;
            }
            self.activity_window.iter_mut().for_each(|a| *a = 0);
            self.activity_window_start = now;
        }
        self.activity_window[w] += executed;
    }

    fn mean_running_locality(&self) -> (f64, usize) {
        let mut sum = 0.0;
        let mut n = 0usize;
        for run in &self.queries {
            if run.status == QueryStatus::Running && run.iteration > 0 {
                sum += run.local_iterations as f64 / run.iteration as f64;
                n += 1;
            }
        }
        if n == 0 {
            (1.0, 0)
        } else {
            (sum / n as f64, n)
        }
    }

    fn maybe_trigger_qcut(&mut self, now: SimTime) {
        if self.paused || self.controller.qcut_config().is_none() {
            return;
        }
        // Trigger evaluation must only see scopes within the monitoring
        // window — without this, a quiet stretch (no completions, so no
        // expiry calls) would feed arbitrarily stale scopes to the ILS.
        self.controller.expire(now);
        let (mean_locality, active) = self.mean_running_locality();
        if !self
            .controller
            .should_trigger(now, mean_locality, self.last_activity_imbalance, active)
        {
            return;
        }

        // Snapshot live scopes (union over workers).
        let live = self.live_scopes();
        let stats = self.controller.build_scope_stats(&live, &self.partitioning);
        if stats.queries.len() < 2 {
            return;
        }
        let Some(cfg) = self.controller.qcut_config().cloned() else {
            // should_trigger() only fires with Q-cut configured; without a
            // config there is nothing to plan.
            return;
        };
        let result = run_qcut(&stats, &cfg);
        self.controller.ils_inflight = true;
        self.pending_plan = Some((result, now));
        let ready = now + SimTime::from_secs_f64(cfg.ils_budget_secs);
        self.events.schedule(ready, Event::IlsReady);
    }

    fn on_ils_ready(&mut self, now: SimTime) {
        self.controller.ils_inflight = false;
        self.controller.last_repartition = now;
        let Some((result, _)) = self.pending_plan.as_ref() else {
            return;
        };
        if result.plan.is_empty() {
            self.pending_plan = None;
            return;
        }
        self.plan_ready = true;
        if self.paused {
            // A mutation barrier is already stopping the world; its apply
            // phase (or the re-entry check at its end) consumes the plan.
            return;
        }
        // STOP barrier: halt new releases/dispatches, drain in-flight
        // supersteps, then migrate.
        self.paused = true;
        self.awaiting_quiesce = true;
        self.maybe_quiesced(now);
    }

    /// A mutation batch's virtual time arrived: join (or open) the
    /// stop-the-world barrier. During an in-flight barrier the batch
    /// simply queues — the apply phase drains every due batch at once.
    fn on_mutation_due(&mut self, m: usize) {
        self.due_mutations.push(m);
        if !self.paused {
            self.paused = true;
            self.awaiting_quiesce = true;
            self.maybe_quiesced(self.events.now());
        }
    }

    /// The stop-the-world barrier body, entered once the workers drained:
    /// apply every due mutation batch (each a new graph epoch), compact
    /// the overlay if it crossed the configured fraction, then migrate
    /// the repartition plan if its ILS budget has elapsed. One barrier
    /// serves all three, so a mutation landing while a Q-cut phase is
    /// pending costs no extra quiesce.
    fn on_global_apply(&mut self, now: SimTime) {
        // Open the auditor's quiesce window *before* the quiescence
        // asserts: if a dispatch is still in flight, the auditor's
        // violation report (with both stacks) beats a bare assert.
        self.hb.quiesce_begin();
        self.tracer.quiesce_begin(now.as_secs_f64());
        debug_assert!(self.paused);
        debug_assert!(self.is_quiescent());
        let mut barrier_cost = SimTime::ZERO;

        // Phase 1: mutation epochs, in submission order (the shared
        // barrier body — see `controller::apply_mutation_epochs`).
        let batches: Vec<MutationBatch> = std::mem::take(&mut self.due_mutations)
            .into_iter()
            .filter_map(|m| {
                let batch = self.mutations[m].take();
                // Each due index is pushed exactly once (on MutationDue),
                // so its slot is still full here.
                debug_assert!(batch.is_some(), "mutation batch {m} applied twice");
                batch
            })
            .collect();
        let epoch_before = self.topology.epoch();
        if !batches.is_empty() {
            self.tracer
                .mutation_begin(now.as_secs_f64(), batches.len() as u64);
        }
        let repairs_before = self.report.index_repairs.len();
        let apply = apply_mutation_epochs(
            &mut self.topology,
            &mut self.partitioning,
            &mut self.controller,
            &mut self.report,
            &batches,
            self.cfg.compact_fraction,
            now.as_secs_f64(),
            self.index.as_deref_mut(),
        );
        let mutation_events_from = apply.events_from;
        // Every epoch the batches opened is published inside the window,
        // before anything resumes and can stamp an outcome with it.
        for e in epoch_before + 1..=self.topology.epoch() {
            self.hb.publish_topology(0, e);
        }
        barrier_cost += self.cluster.compute.mutation_cost(apply.ops);
        if let Some(edges) = apply.compacted_edges {
            barrier_cost += self.cluster.compute.compaction_cost(edges);
            self.tracer.compaction((now + barrier_cost).as_secs_f64());
        }
        // The repair stages ran inside `apply_mutation_epochs`; the span
        // covers the mutation-phase virtual cost, its stage instants carry
        // the summed repair counters of this barrier's batches.
        if self.report.index_repairs.len() > repairs_before {
            let (mut invalidated, mut reruns, mut resumes) = (0u64, 0u64, 0u64);
            for ev in &self.report.index_repairs[repairs_before..] {
                invalidated += ev.summary.entries_invalidated as u64;
                reruns += ev.summary.roots_rerun as u64;
                resumes += ev.summary.partial_roots as u64;
            }
            self.tracer.repair_begin(now.as_secs_f64());
            self.tracer.repair_end(
                (now + barrier_cost).as_secs_f64(),
                invalidated,
                reruns,
                resumes,
            );
        }
        if !batches.is_empty() {
            self.tracer
                .mutation_end((now + barrier_cost).as_secs_f64(), batches.len() as u64);
        }
        let qcut_from = now + barrier_cost;

        // Phase 2: the repartition plan, once its ILS budget elapsed.
        let mut repartition: Option<(IlsResult, SimTime, usize, f64, f64)> = None;
        // `plan_ready` is only set while `pending_plan` is populated
        // (on_ils_ready clears both together), hence the paired pattern.
        if let Some((result, triggered_at)) = if self.plan_ready {
            self.plan_ready = false;
            self.pending_plan.take()
        } else {
            None
        } {
            // Resolve the plan against the quiesced workers: a live
            // query's current local scope, or a finished query's retained
            // scope (the resolver's ownership filter restricts it to the
            // source worker).
            let migration = {
                let workers = &self.workers;
                let queries = &self.queries;
                let controller = &self.controller;
                let mut scope_of = |q: QueryId, w: usize| -> Vec<VertexId> {
                    let live = queries
                        .get(q.index())
                        .is_some_and(|r| r.status == QueryStatus::Running);
                    if live {
                        workers[w].scope_vertices(q)
                    } else {
                        controller
                            .finished_scope(q)
                            .map(|vs| vs.to_vec())
                            .unwrap_or_default()
                    }
                };
                migrate::resolve_plan(&result.plan, &self.partitioning, &mut scope_of)
            };

            // A plan can resolve to nothing by apply time (scopes finished
            // and expired since the trigger): no event, matching the
            // thread runtime's semantics that a RepartitionEvent means
            // vertices moved.
            if !migration.is_empty() {
                let observed = self.controller.observed_scopes(&self.live_scopes());
                let this = &mut *self;
                let queries = &this.queries;
                let workers = &mut this.workers;
                let task_of =
                    |q: QueryId| -> Arc<dyn QueryTask> { Arc::clone(&queries[q.index()].task) };
                let (locality_before, locality_after) =
                    migrate::apply_measured(&migration, &mut this.partitioning, &observed, || {
                        migrate::apply_to_workers(&migration, workers, &task_of)
                    });
                self.hb.publish_partitioning(0);

                // The migration lasts as long as the slowest pair's bulk
                // transfer.
                let duration = migration
                    .per_pair
                    .iter()
                    .map(|&(f, t, n)| {
                        self.cluster.network.bulk_move_cost(
                            n,
                            self.cfg.state_bytes_per_vertex,
                            self.cluster.is_remote(f, t),
                        )
                    })
                    .max()
                    .unwrap_or(SimTime::ZERO);
                barrier_cost += duration;
                repartition = Some((
                    result,
                    triggered_at,
                    migration.moved_vertices,
                    locality_before,
                    locality_after,
                ));
            }
        }

        let end = now + barrier_cost + self.max_control_cost();
        let barrier_duration = (end - now).as_secs_f64();
        for ev in &mut self.report.mutations[mutation_events_from..] {
            ev.barrier_duration = barrier_duration;
        }
        if let Some((result, triggered_at, moved_vertices, locality_before, locality_after)) =
            repartition
        {
            self.tracer.qcut_begin(qcut_from.as_secs_f64());
            self.tracer.qcut_end((now + barrier_cost).as_secs_f64());
            self.report.repartitions.push(RepartitionEvent {
                triggered_at: triggered_at.as_secs_f64(),
                applied_at: now.as_secs_f64(),
                barrier_duration,
                moved_vertices,
                locality_before,
                locality_after,
                ils: result,
            });
        }
        self.events.schedule(end, Event::GlobalBarrierEnd);
    }

    fn on_global_end(&mut self, _now: SimTime) {
        // Close the window before any deferred release re-opens dispatch.
        self.hb.quiesce_end();
        let now = self.events.now();
        self.tracer.quiesce_end(now.as_secs_f64());
        // The lanes are provably idle inside the barrier: the cheapest
        // possible point to move their rings into the central buffer.
        self.tracer.drain();
        self.paused = false;
        // START barrier: resume deferred releases against the new layout.
        let releases = std::mem::take(&mut self.deferred_releases);
        for q in releases {
            self.tracer.unpark(now.as_secs_f64(), u64::from(q.0));
            self.on_barrier_release(now, q);
        }
        self.dispatch_pending();
        // Work that became ready while the barrier was mid-flight (a
        // mutation falling due between apply and end, or an ILS budget
        // elapsing) re-enters the stop-the-world phase immediately.
        if !self.due_mutations.is_empty() || self.plan_ready {
            self.paused = true;
            self.awaiting_quiesce = true;
            self.maybe_quiesced(self.events.now());
        }
    }

    /// The running queries' live scope vertex sets (union over workers).
    fn live_scopes(&self) -> Vec<(QueryId, Vec<VertexId>)> {
        let mut live: Vec<(QueryId, Vec<VertexId>)> = Vec::new();
        for (i, run) in self.queries.iter().enumerate() {
            if run.status == QueryStatus::Running {
                let q = QueryId(i as u32);
                let mut vs: Vec<VertexId> = Vec::new();
                for w in &self.workers {
                    w.for_each_scope_vertex(q, &mut |v| vs.push(v));
                }
                live.push((q, vs));
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BarrierMode;
    use crate::programs::{PingProgram, ReachProgram};
    use qgraph_graph::GraphBuilder;
    use qgraph_partition::{HashPartitioner, Partitioner, RangePartitioner};

    fn line_graph(n: usize) -> Arc<Graph> {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        Arc::new(b.build())
    }

    fn engine_on(graph: Arc<Graph>, k: usize, cfg: SystemConfig) -> SimEngine {
        let parts = RangePartitioner.partition(&graph, k);
        SimEngine::new(graph, ClusterModel::scale_up(k), parts, cfg)
    }

    #[test]
    fn single_query_reaches_whole_line() {
        let g = line_graph(10);
        let mut e = engine_on(g, 2, SystemConfig::default());
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        let out = e.output(&q).unwrap();
        assert_eq!(out.len(), 10);
        let r = &e.report().outcomes[0];
        assert_eq!(r.iterations, 10);
        assert_eq!(r.program, "reach");
        assert!(r.latency_secs() > 0.0);
    }

    #[test]
    fn local_query_has_full_locality() {
        let g = line_graph(10);
        let mut e = engine_on(g, 2, SystemConfig::default());
        // Vertices 5..10 live on worker 1 under Range partitioning.
        let q = e.submit(ReachProgram::new(VertexId(5)));
        e.run();
        let out = e.output(&q).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(e.report().outcomes[0].locality(), 1.0);
        assert_eq!(e.report().outcomes[0].remote_messages, 0);
    }

    #[test]
    fn crossing_query_counts_remote_messages() {
        let g = line_graph(10);
        let mut e = engine_on(g, 2, SystemConfig::default());
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        let _ = q;
        let o = &e.report().outcomes[0];
        assert_eq!(o.remote_messages, 1, "one boundary crossing (4->5)");
        assert!(o.locality() < 1.0);
    }

    #[test]
    fn multiple_queries_all_finish() {
        let g = line_graph(64);
        let mut e = engine_on(g, 4, SystemConfig::default());
        let qs: Vec<QueryHandle<ReachProgram>> = (0..16u32)
            .map(|i| e.submit(ReachProgram::bounded(VertexId(i * 4), 3)))
            .collect();
        e.run();
        assert_eq!(e.report().outcomes.len(), 16);
        for q in qs {
            assert!(e.output(&q).is_some());
        }
    }

    #[test]
    fn heterogeneous_queries_share_one_engine() {
        let g = line_graph(12);
        let mut e = engine_on(g, 2, SystemConfig::default());
        let reach = e.submit(ReachProgram::bounded(VertexId(0), 3));
        let ping = e.submit(PingProgram {
            ring: vec![VertexId(1), VertexId(10)],
            rounds: 4,
        });
        let reach2 = e.submit(ReachProgram::new(VertexId(8)));
        e.run();
        assert_eq!(e.output(&reach).unwrap().len(), 4);
        assert_eq!(*e.output(&ping).unwrap(), 3);
        assert_eq!(e.output(&reach2).unwrap().len(), 4);
        let programs: Vec<&str> = e.report().outcomes.iter().map(|o| o.program).collect();
        assert!(programs.contains(&"reach") && programs.contains(&"ping"));
    }

    #[test]
    fn output_with_wrong_type_is_none_not_panic() {
        let g = line_graph(4);
        let mut e = engine_on(g, 2, SystemConfig::default());
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        assert!(e.output_as::<ReachProgram>(q.id()).is_some());
        assert!(e.output_as::<PingProgram>(q.id()).is_none());
    }

    #[test]
    fn take_output_transfers_ownership() {
        let g = line_graph(6);
        let mut e = engine_on(g, 2, SystemConfig::default());
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        let owned = e.take_output(&q).unwrap();
        assert_eq!(owned.len(), 6);
        assert!(e.output(&q).is_none(), "taken outputs are gone");
    }

    #[test]
    fn closed_loop_respects_parallelism() {
        let g = line_graph(32);
        let cfg = SystemConfig {
            max_parallel_queries: 2,
            ..Default::default()
        };
        let mut e = engine_on(g, 2, cfg);
        for i in 0..6u32 {
            e.submit(ReachProgram::bounded(VertexId(i), 2));
        }
        e.run();
        assert_eq!(e.report().outcomes.len(), 6);
        // With 2-way parallelism, later queries are submitted strictly
        // after earlier completions.
        let o = &e.report().outcomes;
        assert!(o[5].submitted_at >= o[0].completed_at);
    }

    #[test]
    fn hybrid_no_slower_than_global_barrier() {
        let g = line_graph(40);
        let run = |mode| {
            let cfg = SystemConfig {
                barrier_mode: mode,
                ..Default::default()
            };
            let mut e = engine_on(line_graph(40), 2, cfg);
            let _ = g; // keep naming tidy
            for i in 0..8u32 {
                e.submit(ReachProgram::bounded(VertexId(i), 4));
            }
            e.run();
            e.report().total_latency()
        };
        let hybrid = run(BarrierMode::Hybrid);
        let global = run(BarrierMode::GlobalPerQuery);
        assert!(
            hybrid <= global,
            "hybrid {hybrid} must not exceed global {global}"
        );
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let g = line_graph(50);
            let parts = HashPartitioner::default().partition(&g, 4);
            let mut e =
                SimEngine::new(g, ClusterModel::scale_up(4), parts, SystemConfig::default());
            for i in 0..10u32 {
                e.submit(ReachProgram::bounded(VertexId(i * 3), 5));
            }
            e.run();
            (
                e.report().total_latency(),
                e.report().outcomes.len(),
                e.report().total_remote_messages(),
            )
        };
        assert_eq!(build(), build());
    }

    fn ping_engine(k: usize) -> SimEngine {
        let g = line_graph(4);
        let parts = RangePartitioner.partition(&g, k);
        SimEngine::new(g, ClusterModel::scale_up(k), parts, SystemConfig::default())
    }

    #[test]
    fn ping_program_runs_fixed_rounds() {
        let mut e = ping_engine(2);
        let q = e.submit(PingProgram {
            ring: vec![VertexId(0), VertexId(3)],
            rounds: 5,
        });
        e.run();
        assert_eq!(*e.output(&q).unwrap(), 4);
        assert_eq!(e.report().outcomes[0].iterations, 5);
    }

    #[test]
    #[should_panic(expected = "batch_max_msgs")]
    fn mismatched_batch_caps_panic() {
        let g = line_graph(4);
        let parts = RangePartitioner.partition(&g, 2);
        let cfg = SystemConfig {
            batch_max_msgs: 8,
            ..Default::default()
        };
        let _ = SimEngine::new(g, ClusterModel::scale_up(2), parts, cfg);
    }

    #[test]
    fn empty_query_completes_instantly() {
        let mut e = ping_engine(2);
        let q = e.submit(PingProgram {
            ring: vec![],
            rounds: 0,
        });
        e.run();
        assert_eq!(*e.output(&q).unwrap(), 0);
        assert_eq!(e.report().outcomes[0].iterations, 0);
    }
}
