//! Worker-side query execution (paper §3.1, "low-level vertex-centric,
//! local knowledge").
//!
//! A [`Worker`] owns, for every query it participates in, a sparse
//! [`QueryLocal`]: the query-specific vertex data of the vertices the query
//! activated here (its local scope `LS(q,w)`), plus double-buffered message
//! inboxes. Sparse storage is essential for the multi-query model — dense
//! per-query arrays would cost `O(|V| · |Q|)` memory while localized
//! queries touch a tiny graph fraction.
//!
//! Since the heterogeneous-query redesign the worker is **not generic**:
//! each query's local state is held behind the object-safe [`LocalState`]
//! facade, and every operation whose signature mentions program-specific
//! types (message delivery, superstep execution, vertex migration) is
//! routed through that query's [`QueryTask`](crate::task::QueryTask),
//! which downcasts back to the typed [`QueryLocal`] internally. One worker
//! therefore executes SSSP, POI, and reachability queries side by side.
//!
//! Workers are runtime-agnostic: both the discrete-event engine and the
//! thread runtime drive the same code, passing a routing closure that
//! resolves the current vertex→worker assignment.

use std::any::Any;

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{Graph, VertexId};

use crate::program::{Context, VertexProgram};
use crate::task::{Envelope, MessageBatch, QueryTask};
use crate::QueryId;

/// Counters reported after one local superstep; the sizes in it are what
/// the worker piggybacks to the controller as `stats(q, |LS(q,w)|, I_w, w)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Vertex functions executed.
    pub executed: usize,
    /// Messages consumed.
    pub messages_in: usize,
    /// Messages that stayed on this worker.
    pub local_deliveries: usize,
    /// Messages destined for other workers.
    pub remote_deliveries: usize,
    /// `|LS(q,w)|` after the step.
    pub local_scope: usize,
}

/// The object-safe facade over one query's per-worker state: everything a
/// runtime needs that does *not* mention program-specific types. Typed
/// operations reach the concrete [`QueryLocal`] by downcasting through
/// `Any` (the `LocalState: Any` supertrait) inside the query's task.
pub trait LocalState: Any + Send {
    /// Does a next superstep have pending messages here?
    fn has_pending(&self) -> bool;

    /// `(active vertices, messages)` pending for the next superstep.
    fn pending_counts(&self) -> (usize, usize);

    /// Freeze the pending inbox as the current superstep's input; returns
    /// `(active vertices, messages)` for the cost model.
    fn freeze(&mut self) -> (usize, usize);

    /// `(active vertices, messages)` of the already-frozen superstep input.
    fn frozen_counts(&self) -> (usize, usize);

    /// `|LS(q,w)|`: vertices the query has activated on this worker.
    fn scope_size(&self) -> usize;

    /// The live local scope vertex set.
    fn scope_vertices(&self) -> Vec<VertexId>;
}

/// Per-query, per-worker execution state for one program type `P`.
pub struct QueryLocal<P: VertexProgram> {
    /// Frozen inbox of the running superstep, sorted by vertex id for
    /// deterministic execution order.
    cur: Vec<(VertexId, Vec<P::Message>)>,
    /// Inbox accumulating messages for the next superstep.
    next: FxHashMap<VertexId, Vec<P::Message>>,
    /// Query-specific vertex data `D_v` for activated vertices.
    state: FxHashMap<VertexId, P::State>,
}

impl<P: VertexProgram> Default for QueryLocal<P> {
    fn default() -> Self {
        QueryLocal {
            cur: Vec::new(),
            next: FxHashMap::default(),
            state: FxHashMap::default(),
        }
    }
}

impl<P: VertexProgram> LocalState for QueryLocal<P> {
    fn has_pending(&self) -> bool {
        !self.next.is_empty()
    }

    fn pending_counts(&self) -> (usize, usize) {
        (self.next.len(), self.next.values().map(Vec::len).sum())
    }

    /// Called at *barrier release* (not task start): all involved workers
    /// freeze at the same instant, so messages produced by another
    /// worker's in-flight superstep can never leak into this one — the
    /// BSP isolation that makes iteration counts partition-independent.
    fn freeze(&mut self) -> (usize, usize) {
        debug_assert!(self.cur.is_empty(), "freeze with unexecuted frozen inbox");
        self.cur = self.next.drain().collect();
        self.cur.sort_unstable_by_key(|(v, _)| *v);
        let msgs = self.cur.iter().map(|(_, m)| m.len()).sum();
        (self.cur.len(), msgs)
    }

    fn frozen_counts(&self) -> (usize, usize) {
        (self.cur.len(), self.cur.iter().map(|(_, m)| m.len()).sum())
    }

    fn scope_size(&self) -> usize {
        self.state.len()
    }

    fn scope_vertices(&self) -> Vec<VertexId> {
        self.state.keys().copied().collect()
    }
}

impl<P: VertexProgram> QueryLocal<P> {
    /// Deliver messages into the next-superstep inbox.
    pub(crate) fn deliver(&mut self, msgs: impl IntoIterator<Item = (VertexId, P::Message)>) {
        for (v, m) in msgs {
            self.next.entry(v).or_default().push(m);
        }
    }

    /// Execute the frozen superstep.
    ///
    /// `route` resolves the *current* assignment; messages to `home` go
    /// straight into the next inbox, others are returned bucketed by
    /// destination worker.
    #[allow(clippy::type_complexity)]
    pub(crate) fn execute(
        &mut self,
        graph: &Graph,
        program: &P,
        prev_aggregate: &P::Aggregate,
        home: usize,
        route: &dyn Fn(VertexId) -> usize,
    ) -> (
        SuperstepStats,
        P::Aggregate,
        Vec<(usize, Vec<(VertexId, P::Message)>)>,
    ) {
        let mut stats = SuperstepStats::default();
        let mut aggregate = program.aggregate_identity();
        let mut outgoing: Vec<(VertexId, P::Message)> = Vec::new();
        let combine = |a: &mut P::Aggregate, b: &P::Aggregate| program.aggregate_combine(a, b);

        let cur = std::mem::take(&mut self.cur);
        for (v, msgs) in &cur {
            let state = self.state.entry(*v).or_insert_with(|| program.init_state());
            let mut ctx = Context {
                outgoing: &mut outgoing,
                aggregate: &mut aggregate,
                prev_aggregate,
                combine: &combine,
            };
            program.compute(graph, *v, state, msgs, &mut ctx);
            stats.executed += 1;
            stats.messages_in += msgs.len();
        }

        // Route produced messages.
        let mut buckets: FxHashMap<usize, Vec<(VertexId, P::Message)>> = FxHashMap::default();
        for (to, msg) in outgoing {
            let w = route(to);
            if w == home {
                self.next.entry(to).or_default().push(msg);
                stats.local_deliveries += 1;
            } else {
                buckets.entry(w).or_default().push((to, msg));
                stats.remote_deliveries += 1;
            }
        }
        stats.local_scope = self.state.len();
        let mut remote: Vec<_> = buckets.into_iter().collect();
        remote.sort_unstable_by_key(|(w, _)| *w); // deterministic order
        (stats, aggregate, remote)
    }

    /// Extract all data of the given vertices, for migration to another
    /// worker during a global barrier. The frozen inbox must be empty (no
    /// superstep in flight), which the engine guarantees by quiescing
    /// workers first.
    #[allow(clippy::type_complexity)]
    pub(crate) fn extract(
        &mut self,
        vertices: &FxHashSet<VertexId>,
    ) -> Vec<(VertexId, Option<P::State>, Vec<P::Message>)> {
        debug_assert!(self.cur.is_empty(), "migration during a running superstep");
        let touched: Vec<VertexId> = self
            .state
            .keys()
            .chain(self.next.keys())
            .filter(|v| vertices.contains(v))
            .copied()
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        let mut entries = Vec::new();
        for v in touched {
            let st = self.state.remove(&v);
            let msgs = self.next.remove(&v).unwrap_or_default();
            entries.push((v, st, msgs));
        }
        entries.sort_unstable_by_key(|(v, _, _)| *v);
        entries
    }

    /// Inject migrated vertex data (the counterpart of
    /// [`QueryLocal::extract`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn inject(&mut self, entries: Vec<(VertexId, Option<P::State>, Vec<P::Message>)>) {
        for (v, st, msgs) in entries {
            if let Some(st) = st {
                self.state.insert(v, st);
            }
            if !msgs.is_empty() {
                self.next.entry(v).or_default().extend(msgs);
            }
        }
    }

    /// Consume the local, yielding the vertex states it accumulated (for
    /// [`VertexProgram::finalize`]).
    pub(crate) fn into_states(self) -> FxHashMap<VertexId, P::State> {
        self.state
    }
}

/// One worker: the container of all queries' local state on this
/// partition. Queries of *different* program types coexist; each entry is
/// a type-erased [`LocalState`] that the query's task downcasts.
pub struct Worker {
    /// This worker's id (index into the cluster).
    pub id: usize,
    queries: FxHashMap<QueryId, Box<dyn LocalState>>,
}

impl Worker {
    /// An empty worker.
    pub fn new(id: usize) -> Self {
        Worker {
            id,
            queries: FxHashMap::default(),
        }
    }

    fn local_or_new(&mut self, task: &dyn QueryTask, q: QueryId) -> &mut Box<dyn LocalState> {
        self.queries.entry(q).or_insert_with(|| task.new_local())
    }

    /// Deliver a message batch into query `q`'s next-superstep inbox.
    pub fn deliver(&mut self, task: &dyn QueryTask, q: QueryId, batch: MessageBatch) {
        let local = self.local_or_new(task, q);
        task.deliver(local.as_mut(), batch);
    }

    /// Does query `q` have pending messages for a next superstep here?
    pub fn has_pending(&self, q: QueryId) -> bool {
        self.queries.get(&q).is_some_and(|l| l.has_pending())
    }

    /// `(active vertices, messages)` pending for query `q`'s next superstep.
    pub fn pending_counts(&self, q: QueryId) -> (usize, usize) {
        self.queries.get(&q).map_or((0, 0), |l| l.pending_counts())
    }

    /// Freeze query `q`'s pending inbox as the current superstep's input;
    /// returns `(active vertices, messages)` for the cost model.
    pub fn freeze(&mut self, q: QueryId) -> (usize, usize) {
        self.queries.get_mut(&q).map_or((0, 0), |l| l.freeze())
    }

    /// `(active vertices, messages)` of the already-frozen superstep input.
    pub fn frozen_counts(&self, q: QueryId) -> (usize, usize) {
        self.queries.get(&q).map_or((0, 0), |l| l.frozen_counts())
    }

    /// Execute the frozen superstep of query `q` under its `task`.
    pub fn execute(
        &mut self,
        q: QueryId,
        task: &dyn QueryTask,
        graph: &Graph,
        prev_aggregate: &Envelope,
        route: &dyn Fn(VertexId) -> usize,
    ) -> (SuperstepStats, Envelope, Vec<(usize, MessageBatch)>) {
        let home = self.id;
        let local = self.local_or_new(task, q);
        task.execute(local.as_mut(), graph, prev_aggregate, home, route)
    }

    /// `|LS(q,w)|`: vertices query `q` has activated on this worker.
    pub fn scope_size(&self, q: QueryId) -> usize {
        self.queries.get(&q).map_or(0, |l| l.scope_size())
    }

    /// The live local scope vertex set of query `q`.
    pub fn scope_vertices(&self, q: QueryId) -> Vec<VertexId> {
        self.queries
            .get(&q)
            .map(|l| l.scope_vertices())
            .unwrap_or_default()
    }

    /// Queries with state on this worker.
    pub fn active_queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// Remove query `q` entirely, returning its local state (for the
    /// task's `finalize`).
    pub fn take_local(&mut self, q: QueryId) -> Option<Box<dyn LocalState>> {
        self.queries.remove(&q)
    }

    /// Extract all per-query data of the given vertices, for migration to
    /// another worker during a global barrier. `task_of` resolves each
    /// query's task (which performs the typed extraction).
    pub fn extract_vertices(
        &mut self,
        task_of: &dyn Fn(QueryId) -> std::sync::Arc<dyn QueryTask>,
        vertices: &FxHashSet<VertexId>,
    ) -> Vec<(QueryId, Envelope)> {
        let mut out = Vec::new();
        for (&q, local) in self.queries.iter_mut() {
            if let Some(envelope) = task_of(q).extract(local.as_mut(), vertices) {
                out.push((q, envelope));
            }
        }
        out.sort_unstable_by_key(|(q, _)| *q);
        out
    }

    /// Inject migrated vertex data (the counterpart of
    /// [`Worker::extract_vertices`]).
    pub fn inject_vertices(
        &mut self,
        task_of: &dyn Fn(QueryId) -> std::sync::Arc<dyn QueryTask>,
        data: Vec<(QueryId, Envelope)>,
    ) {
        for (q, envelope) in data {
            let task = task_of(q);
            let local = self.local_or_new(task.as_ref(), q);
            task.inject(local.as_mut(), envelope);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::ReachProgram;
    use crate::task::TypedTask;
    use qgraph_graph::GraphBuilder;

    fn line() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.build()
    }

    fn reach_task() -> TypedTask<ReachProgram> {
        TypedTask::new(ReachProgram::new(VertexId(0)))
    }

    fn batch(task: &TypedTask<ReachProgram>, msgs: Vec<(VertexId, u32)>) -> MessageBatch {
        task.batch_for_test(msgs)
    }

    #[test]
    fn deliver_freeze_execute_cycle() {
        let g = line();
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        assert!(w.has_pending(q));
        assert_eq!(w.pending_counts(q), (1, 1));

        let (active, msgs) = w.freeze(q);
        assert_eq!((active, msgs), (1, 1));
        let prev = task.aggregate_identity();
        let (stats, _agg, remote) = w.execute(q, &task, &g, &prev, &|_| 0);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.local_deliveries, 1); // 0 -> 1 stays local
        assert!(remote.is_empty());
        assert_eq!(w.scope_size(q), 1);
        assert!(w.has_pending(q)); // vertex 1 activated
    }

    #[test]
    fn remote_messages_bucketed_by_destination() {
        let g = line();
        let task = reach_task();
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        // Route everything except vertex 0 to worker 1.
        let prev = task.aggregate_identity();
        let (stats, _, remote) = w.execute(q, &task, &g, &prev, &|v| usize::from(v != VertexId(0)));
        assert_eq!(stats.remote_deliveries, 1);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].0, 1);
        assert_eq!(remote[0].1.len(), 1);
        assert!(!w.has_pending(q));
    }

    #[test]
    fn migration_roundtrip_preserves_state_and_inbox() {
        let g = line();
        let task = std::sync::Arc::new(reach_task());
        let q = QueryId(0);
        let mut a = Worker::new(0);
        a.deliver(task.as_ref(), q, batch(&task, vec![(VertexId(0), 0)]));
        a.freeze(q);
        let prev = task.aggregate_identity();
        a.execute(q, task.as_ref(), &g, &prev, &|_| 0);
        // Now vertex 0 has state, vertex 1 has a pending message.
        let moved: FxHashSet<VertexId> = [VertexId(0), VertexId(1)].into_iter().collect();
        let task_of = {
            let task = std::sync::Arc::clone(&task);
            move |_q: QueryId| task.clone() as std::sync::Arc<dyn QueryTask>
        };
        let data = a.extract_vertices(&task_of, &moved);
        assert_eq!(a.scope_size(q), 0);
        assert!(!a.has_pending(q));

        let mut b = Worker::new(1);
        b.inject_vertices(&task_of, data);
        assert_eq!(b.scope_size(q), 1);
        assert!(b.has_pending(q));
        assert_eq!(b.pending_counts(q), (1, 1));
    }

    #[test]
    fn take_local_removes_query() {
        let g = line();
        let task = reach_task();
        let q = QueryId(0);
        let mut w = Worker::new(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        w.freeze(q);
        let prev = task.aggregate_identity();
        w.execute(q, &task, &g, &prev, &|_| 0);
        let local = w.take_local(q).expect("present");
        assert_eq!(local.scope_size(), 1);
        assert_eq!(w.scope_size(q), 0);
        assert_eq!(w.active_queries().count(), 0);
    }

    #[test]
    fn multiple_queries_of_mixed_types_are_isolated() {
        let g = line();
        let reach = reach_task();
        let ping = TypedTask::new(crate::programs::PingProgram {
            ring: vec![VertexId(2), VertexId(3)],
            rounds: 2,
        });
        let (q1, q2) = (QueryId(1), QueryId(2));
        let mut w = Worker::new(0);
        w.deliver(&reach, q1, batch(&reach, vec![(VertexId(0), 0)]));
        w.deliver(&ping, q2, ping.batch_for_test(vec![(VertexId(2), 0)]));
        w.freeze(q1);
        let prev = reach.aggregate_identity();
        w.execute(q1, &reach, &g, &prev, &|_| 0);
        assert_eq!(w.scope_size(q1), 1);
        assert_eq!(w.scope_size(q2), 0);
        assert!(w.has_pending(q2));

        w.freeze(q2);
        let prev = ping.aggregate_identity();
        let (stats, _, _) = w.execute(q2, &ping, &g, &prev, &|_| 0);
        assert_eq!(stats.executed, 1);
        assert_eq!(w.scope_size(q2), 1);
    }

    #[test]
    fn empty_freeze_is_harmless() {
        let mut w = Worker::new(0);
        assert_eq!(w.freeze(QueryId(0)), (0, 0));
    }

    #[test]
    #[should_panic(expected = "query task type mismatch")]
    fn wrong_task_type_panics_in_debug() {
        let task = reach_task();
        let ping = TypedTask::new(crate::programs::PingProgram {
            ring: vec![],
            rounds: 0,
        });
        let mut w = Worker::new(0);
        let q = QueryId(0);
        w.deliver(&task, q, batch(&task, vec![(VertexId(0), 0)]));
        // Delivering a ping batch through the reach local must be caught.
        w.deliver(&ping, q, ping.batch_for_test(vec![(VertexId(0), 0)]));
    }
}
