//! Sequential reference algorithms — ground truth for validating the
//! distributed vertex programs (unit, property, and integration tests all
//! compare against these).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qgraph_graph::{Graph, VertexId};

/// Ordered f32 wrapper for the binary heap (weights are finite, ≥ 0).
#[derive(PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite weights")
    }
}

/// Dijkstra from `source`: distances to all vertices (`f32::INFINITY` =
/// unreachable).
pub fn dijkstra(graph: &Graph, source: VertexId) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; graph.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF32(0.0), source)));
    while let Some(Reverse((OrdF32(d), v))) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((OrdF32(nd), t)));
            }
        }
    }
    dist
}

/// Dijkstra with early exit at `target`. `None` when unreachable.
pub fn dijkstra_to(graph: &Graph, source: VertexId, target: VertexId) -> Option<f32> {
    let mut dist = vec![f32::INFINITY; graph.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF32(0.0), source)));
    while let Some(Reverse((OrdF32(d), v))) = heap.pop() {
        if v == target {
            return Some(d);
        }
        if d > dist[v.index()] {
            continue;
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((OrdF32(nd), t)));
            }
        }
    }
    None
}

/// Nearest tagged vertex from `source` by travel time; ties break to the
/// lower vertex id (matching [`crate::PoiProgram`]).
pub fn nearest_tagged(graph: &Graph, source: VertexId) -> Option<(VertexId, f32)> {
    let dist = dijkstra(graph, source);
    graph
        .vertices()
        .filter(|v| graph.props().is_tagged(*v) && dist[v.index()].is_finite())
        .map(|v| (v, dist[v.index()]))
        .min_by(|(va, a), (vb, b)| a.partial_cmp(b).expect("finite").then(va.cmp(vb)))
}

/// Hop distances within `max_depth` hops of `source`, sorted by vertex.
pub fn k_hop(graph: &Graph, source: VertexId, max_depth: u32) -> Vec<(VertexId, u32)> {
    let mut depth = vec![u32::MAX; graph.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    depth[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = depth[v.index()];
        if d >= max_depth {
            continue;
        }
        for (t, _) in graph.neighbors(v) {
            if depth[t.index()] == u32::MAX {
                depth[t.index()] = d + 1;
                queue.push_back(t);
            }
        }
    }
    let mut out: Vec<(VertexId, u32)> = graph
        .vertices()
        .filter(|v| depth[v.index()] != u32::MAX)
        .map(|v| (v, depth[v.index()]))
        .collect();
    out.sort_unstable();
    out
}

/// The vertex set of `source`'s (weakly, if symmetrized) connected
/// component, sorted.
pub fn connected_component_of(graph: &Graph, source: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; graph.num_vertices()];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(v) = stack.pop() {
        for (t, _) in graph.neighbors(v) {
            if !seen[t.index()] {
                seen[t.index()] = true;
                stack.push(t);
            }
        }
    }
    graph.vertices().filter(|v| seen[v.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::GraphBuilder;

    fn weighted_line() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1, 1.0);
        b.add_undirected_edge(1, 2, 2.0);
        b.add_undirected_edge(2, 3, 4.0);
        b.build()
    }

    #[test]
    fn dijkstra_distances() {
        let g = weighted_line();
        let d = dijkstra(&g, VertexId(0));
        assert_eq!(d, vec![0.0, 1.0, 3.0, 7.0]);
    }

    #[test]
    fn dijkstra_to_early_exit() {
        let g = weighted_line();
        assert_eq!(dijkstra_to(&g, VertexId(0), VertexId(2)), Some(3.0));
        assert_eq!(dijkstra_to(&g, VertexId(3), VertexId(3)), Some(0.0));
    }

    #[test]
    fn dijkstra_to_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(dijkstra_to(&g, VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn nearest_tagged_travel_time() {
        let mut g = weighted_line();
        g.props_mut().tags = vec![false, false, true, true];
        assert_eq!(nearest_tagged(&g, VertexId(0)), Some((VertexId(2), 3.0)));
        g.props_mut().tags = vec![false; 4];
        assert_eq!(nearest_tagged(&g, VertexId(0)), None);
    }

    #[test]
    fn k_hop_depths() {
        let g = weighted_line();
        assert_eq!(
            k_hop(&g, VertexId(1), 1),
            vec![(VertexId(0), 1), (VertexId(1), 0), (VertexId(2), 1)]
        );
    }

    #[test]
    fn component_members() {
        let mut b = GraphBuilder::new(5);
        b.add_undirected_edge(0, 1, 1.0);
        b.add_undirected_edge(3, 4, 1.0);
        let g = b.build();
        assert_eq!(
            connected_component_of(&g, VertexId(0)),
            vec![VertexId(0), VertexId(1)]
        );
        assert_eq!(connected_component_of(&g, VertexId(2)), vec![VertexId(2)]);
    }
}
