//! Application 2 (paper §1): personalized social-network analysis — many
//! overlapping "social circle" queries on a shared small-world graph, here
//! as k-hop neighbourhoods plus localized PageRank (the paper's
//! future-work algorithm) — *mixed in one engine run*, executed on the
//! real multi-threaded runtime.
//!
//! ```text
//! cargo run --release -p qgraph-examples --bin social_circles
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;

use qgraph_algo::{BfsProgram, PprProgram};
use qgraph_core::runtime::ThreadEngine;
use qgraph_graph::VertexId;
use qgraph_partition::{DomainPartitioner, Partitioner};
use qgraph_workload::{generate_ws, WattsStrogatzConfig};

fn main() {
    // A small-world network: high clustering => overlapping circles.
    let graph = Arc::new(generate_ws(WattsStrogatzConfig {
        n: 20_000,
        k: 10,
        beta: 0.05,
        region_size: 1_000,
        seed: 7,
    }));
    println!(
        "social graph: {} users, {} ties",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    let parts = DomainPartitioner.partition(&graph, 4);

    // One heterogeneous batch on real threads: 2-hop circles for a set of
    // users *and* a localized PageRank around the first one.
    let mut engine = ThreadEngine::new(Arc::clone(&graph), parts);
    let users: Vec<u32> = (0..12).map(|i| i * 1_500 + 37).collect();
    let circles: Vec<_> = users
        .iter()
        .map(|&u| engine.submit(BfsProgram::new(VertexId(u), 2)))
        .collect();
    let ppr = engine.submit(PprProgram::new(VertexId(users[0]), 0.15, 1e-5));
    engine.run();

    for (u, c) in users.iter().zip(&circles) {
        let outcome = engine
            .report()
            .outcomes
            .iter()
            .find(|o| o.id == c.id())
            .expect("finished");
        println!(
            "  user {u}: {} people within 2 hops ({} supersteps)",
            engine.output(c).expect("finished").len(),
            outcome.iterations
        );
    }

    let top = engine.output(&ppr).expect("finished");
    println!(
        "localized PageRank around user {}: touched {} vertices; top-3 {:?}",
        users[0],
        top.len(),
        top.iter()
            .take(3)
            .map(|(v, p)| (v.0, *p))
            .collect::<Vec<_>>()
    );
    print!("{}", engine.report().program_table().render());
}
