//! A real multi-threaded shared-memory runtime.
//!
//! [`ThreadEngine`] runs the same worker code as the discrete-event engine
//! — same [`crate::worker::Worker`], same vertex programs, same per-query
//! limited barriers — but on OS threads with `std::sync::mpsc` channels.
//! It demonstrates that the library is an executable system, and the
//! integration tests use it to cross-validate the simulator: both runtimes
//! must produce identical query outputs.
//!
//! Since the heterogeneous-query redesign the thread runtime exposes the
//! same submit/run/output lifecycle as [`crate::SimEngine`] (both behind
//! the shared [`crate::Engine`] trait) instead of its old batch-only
//! `run(Vec<P>)`: queries of *different* program types are queued through
//! typed [`crate::QueryHandle`]s and executed concurrently under the
//! closed loop (`max_parallel_queries`). Internally every query travels as
//! a type-erased [`QueryTask`]; worker threads never see a program type.
//!
//! ## Adaptive Q-cut (stop-the-world)
//!
//! With Q-cut configured ([`SystemConfig::qcut`] with a non-zero
//! [`QcutConfig::qcut_interval`](crate::QcutConfig::qcut_interval)), the
//! coordinator re-evaluates the repartition trigger every `qcut_interval`
//! completed query supersteps. When mean query locality or worker balance
//! degrades past the configured thresholds, it enters a stop-the-world
//! phase:
//!
//! 1. **Park** — queries reaching their superstep barrier are parked
//!    instead of released; no new queries are admitted; in-flight
//!    supersteps and collections drain to quiescence.
//! 2. **Aggregate** — every worker reports its live per-query scope
//!    vertex sets; the coordinator builds the controller's high-level
//!    [`ScopeStats`](crate::qcut::ScopeStats) (live scopes plus retained
//!    finished scopes) and runs the same
//!    [`qcut::run_qcut`](crate::qcut::run_qcut) ILS as the simulation.
//! 3. **Migrate** — the resulting move plan is resolved into disjoint
//!    vertex transfers by the shared [`qcut::migrate`] layer; each
//!    transfer is extracted on its source worker thread and injected on
//!    its destination (vertex state *and* pending inboxes travel
//!    together), then the new vertex→worker assignment is committed and
//!    broadcast to every worker before anything resumes.
//! 4. **Resume** — parked queries' involved sets are recomputed against
//!    the post-migration message placement and released; the closed loop
//!    admits waiting queries again.
//!
//! Because the assignment only changes while every worker is parked and
//! each worker swaps to the new assignment before executing another
//! superstep, no message is ever routed to a stale owner.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{Graph, VertexId};
use qgraph_partition::Partitioning;
use qgraph_sim::SimTime;

use crate::config::SystemConfig;
use crate::controller::Controller;
use crate::program::VertexProgram;
use crate::qcut::{migrate, run_qcut, IlsResult, Migration};
use crate::query::{QueryHandle, QueryId, QueryOutcome};
use crate::report::{ActivitySample, EngineReport, RepartitionEvent};
use crate::task::{Envelope, MessageBatch, QueryTask, TypedTask};
use crate::worker::{LocalState, Worker};

enum Cmd {
    Deliver {
        q: QueryId,
        batch: MessageBatch,
    },
    Step {
        q: QueryId,
        prev_agg: Envelope,
    },
    Collect {
        q: QueryId,
    },
    /// Report every query's live scope vertex set (repartition barrier).
    ScopeReport,
    /// Extract all queries' data on the given vertices (migration);
    /// `token` identifies the resolved move and is echoed back so the
    /// coordinator can pipeline extracts across workers.
    Extract {
        token: usize,
        vertices: Vec<VertexId>,
    },
    /// Inject data extracted from another worker (migration).
    Inject {
        data: Vec<(QueryId, Envelope)>,
    },
    /// Swap in the post-migration vertex→worker assignment.
    SetPartitioning(Arc<Partitioning>),
    /// Report the queries with pending messages here (barrier resume).
    PendingReport,
    Shutdown,
}

enum Resp {
    StepDone {
        q: QueryId,
        executed: usize,
        remote_sent: u64,
        agg: Envelope,
        remote: Vec<(usize, MessageBatch)>,
        self_pending: bool,
        worker: usize,
    },
    Collected {
        q: QueryId,
        local: Option<Box<dyn LocalState>>,
    },
    Scopes {
        worker: usize,
        scopes: Vec<(QueryId, Vec<VertexId>)>,
    },
    Extracted {
        token: usize,
        data: Vec<(QueryId, Envelope)>,
    },
    Pending {
        worker: usize,
        queries: Vec<QueryId>,
    },
}

struct QueryTracking {
    task: Arc<dyn QueryTask>,
    outstanding: usize,
    /// Workers computing the current superstep (for the locality metric).
    involved_cur: usize,
    /// Any message of the current superstep crossed a worker boundary
    /// (the `!crossed` half of the canonical locality definition,
    /// [`crate::barrier::decide`]).
    crossed: bool,
    agg_acc: Envelope,
    agg_prev: Envelope,
    next_involved: FxHashSet<usize>,
    touched: FxHashSet<usize>,
    collecting: usize,
    locals: Vec<Box<dyn LocalState>>,
    iterations: u32,
    local_iterations: u32,
    /// Supersteps completed within the current trigger window (reset with
    /// the activity counters, so a long query's stale early history
    /// cannot keep re-firing barriers after a successful migration).
    window_iterations: u32,
    window_local: u32,
    vertex_updates: u64,
    remote_messages: u64,
    started_at: SimTime,
}

/// The multi-threaded runtime: one OS thread per worker partition, the
/// same submit/run/output lifecycle as the simulated engine, and the same
/// adaptive Q-cut loop running as a stop-the-world phase (see the module
/// docs for the barrier protocol).
pub struct ThreadEngine {
    graph: Arc<Graph>,
    /// The coordinator's master copy of the vertex→worker assignment;
    /// workers hold `Arc` snapshots refreshed at every repartition.
    partitioning: Partitioning,
    cfg: SystemConfig,
    controller: Controller,
    tasks: Vec<Arc<dyn QueryTask>>,
    outputs: Vec<Option<Envelope>>,
    /// Queries submitted but not yet executed by a `run` call.
    pending: Vec<QueryId>,
    report: EngineReport,
}

impl ThreadEngine {
    /// Create a runtime over `graph` with an initial `partitioning` and
    /// the default [`SystemConfig`].
    pub fn new(graph: Arc<Graph>, partitioning: Partitioning) -> Self {
        Self::with_config(graph, partitioning, SystemConfig::default())
    }

    /// Create a runtime with an explicit configuration. The thread runtime
    /// honors `max_parallel_queries` and — when `qcut` is set with a
    /// non-zero `qcut_interval` — the adaptive repartitioning loop;
    /// barrier mode and the simulated cost model remain simulation-only.
    pub fn with_config(graph: Arc<Graph>, partitioning: Partitioning, cfg: SystemConfig) -> Self {
        assert_eq!(
            partitioning.num_vertices(),
            graph.num_vertices(),
            "partitioning does not cover the graph"
        );
        ThreadEngine {
            graph,
            partitioning,
            controller: Controller::new(cfg.qcut.clone()),
            cfg,
            tasks: Vec::new(),
            outputs: Vec::new(),
            pending: Vec::new(),
            report: EngineReport::default(),
        }
    }

    /// Enqueue a query of any program type for the next [`ThreadEngine::run`].
    pub fn submit<P: VertexProgram>(&mut self, program: P) -> QueryHandle<P> {
        QueryHandle::new(self.submit_task(Arc::new(TypedTask::new(program))))
    }

    /// Type-erased submission backing [`ThreadEngine::submit`] (and the
    /// [`crate::Engine`] trait).
    pub fn submit_task(&mut self, task: Arc<dyn QueryTask>) -> QueryId {
        let id = QueryId(self.tasks.len() as u32);
        self.tasks.push(task);
        self.outputs.push(None);
        self.pending.push(id);
        id
    }

    /// Execute every pending query to completion on real threads; results
    /// are retrieved through the handles. Returns the cumulative report
    /// (outcome timestamps are wall-clock seconds since this call).
    pub fn run(&mut self) -> &EngineReport {
        let queue: Vec<QueryId> = std::mem::take(&mut self.pending);
        if queue.is_empty() {
            return &self.report;
        }
        let k = self.partitioning.num_workers();
        let registry: Arc<Vec<Arc<dyn QueryTask>>> = Arc::new(self.tasks.clone());
        let shared_parts = Arc::new(self.partitioning.clone());
        let (resp_tx, resp_rx) = channel::<Resp>();
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);

        for w in 0..k {
            let (tx, rx) = channel::<Cmd>();
            cmd_txs.push(tx);
            let graph = Arc::clone(&self.graph);
            let partitioning = Arc::clone(&shared_parts);
            let registry = Arc::clone(&registry);
            let resp = resp_tx.clone();
            handles.push(thread::spawn(move || {
                worker_loop(w, graph, partitioning, registry, rx, resp);
            }));
        }
        drop(resp_tx);

        self.drive(queue, &cmd_txs, resp_rx);

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        &self.report
    }

    /// The output of a finished query, recovered through its typed handle.
    pub fn output<P: VertexProgram>(&self, handle: &QueryHandle<P>) -> Option<&P::Output> {
        self.output_as::<P>(handle.id())
    }

    /// Typed output lookup by raw [`QueryId`]; `None` if unfinished or if
    /// `P` is not the program type the query was submitted with.
    pub fn output_as<P: VertexProgram>(&self, q: QueryId) -> Option<&P::Output> {
        self.output_envelope(q)?.downcast_ref::<P::Output>()
    }

    /// Erased output access (backs the [`crate::Engine`] trait).
    pub fn output_envelope(&self, q: QueryId) -> Option<&(dyn std::any::Any + Send)> {
        self.outputs.get(q.index())?.as_deref()
    }

    /// Take ownership of a finished query's output.
    pub fn take_output<P: VertexProgram>(&mut self, handle: &QueryHandle<P>) -> Option<P::Output> {
        let slot = self.outputs.get_mut(handle.id().index())?;
        slot.as_ref()?.downcast_ref::<P::Output>()?;
        slot.take()
            .and_then(|b| b.downcast::<P::Output>().ok())
            .map(|b| *b)
    }

    /// The cumulative measurement report over every completed `run`.
    pub fn report(&self) -> &EngineReport {
        &self.report
    }

    /// The current vertex→worker assignment (mutated by repartitionings).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    fn drive(&mut self, queue: Vec<QueryId>, cmd_txs: &[Sender<Cmd>], resp_rx: Receiver<Resp>) {
        // One monotonic time base across run() calls: this run's
        // timestamps continue from the previous run's end, so the
        // cumulative report's outcomes and `finished_at_secs` agree.
        let base = self.report.finished_at_secs;
        let started = Instant::now();
        let now =
            move |started: &Instant| SimTime::from_secs_f64(base + started.elapsed().as_secs_f64());
        let k = cmd_txs.len();
        let mut tracking: FxHashMap<QueryId, QueryTracking> = FxHashMap::default();
        let mut finished = 0usize;
        let total = queue.len();
        let mut waiting: std::collections::VecDeque<QueryId> = queue.into();
        let max_parallel = self.cfg.max_parallel_queries.max(1);
        let mut in_flight = 0usize;

        // Stop-the-world repartition state. `inflight_ops` counts Step and
        // Collect commands awaiting a response: zero while a barrier is
        // pending means the workers are quiescent.
        let qcut_enabled = self.cfg.qcut.is_some();
        let qcut_interval = self.cfg.qcut.as_ref().map_or(0, |c| c.qcut_interval);
        let mut supersteps_since = 0usize;
        let mut worker_activity = vec![0usize; k];
        let mut repart_pending = false;
        let mut repart_triggered_at = 0.0f64;
        let mut parked: Vec<(QueryId, Vec<usize>)> = Vec::new();
        let mut inflight_ops = 0usize;

        // Start a fresh trigger-evaluation window: used both when a
        // checkpoint declines to repartition and when a barrier ends, so
        // every windowed counter resets at exactly the same points.
        macro_rules! reset_trigger_window {
            () => {{
                supersteps_since = 0;
                worker_activity.iter_mut().for_each(|a| *a = 0);
                for t in tracking.values_mut() {
                    t.window_iterations = 0;
                    t.window_local = 0;
                }
            }};
        }

        // Release query `$t`'s next superstep to the given involved
        // workers — one dispatch path shared by the normal barrier release
        // and the post-repartition resume, so their bookkeeping cannot
        // diverge.
        macro_rules! dispatch_step {
            ($q:expr, $t:expr, $next:expr) => {{
                let next: Vec<usize> = $next;
                $t.involved_cur = next.len();
                for w in next {
                    cmd_txs[w]
                        .send(Cmd::Step {
                            q: $q,
                            prev_agg: $t.task.clone_aggregate(&$t.agg_prev),
                        })
                        .expect("worker alive");
                    $t.outstanding += 1;
                    inflight_ops += 1;
                }
            }};
        }

        // Closed-loop seeding: start a query; returns false if it finished
        // immediately (no initial messages).
        macro_rules! start_query {
            ($q:expr) => {{
                let q: QueryId = $q;
                let task = Arc::clone(&self.tasks[q.index()]);
                let batches = {
                    // Route against the *current* assignment: earlier
                    // repartitions of this run have already moved it on.
                    let route = |v: VertexId| self.partitioning.worker_of(v).index();
                    task.initial_batches(&self.graph, &route)
                };
                if batches.is_empty() {
                    // No initial messages: finalize over the empty state set.
                    let at = now(&started);
                    self.outputs[q.index()] = Some(task.finalize(&self.graph, Vec::new()));
                    self.report.outcomes.push(QueryOutcome {
                        id: q,
                        program: task.program_name(),
                        submitted_at: at,
                        completed_at: at,
                        iterations: 0,
                        local_iterations: 0,
                        vertex_updates: 0,
                        remote_messages: 0,
                        scope_size: 0,
                    });
                    finished += 1;
                    false
                } else {
                    let mut t = QueryTracking {
                        agg_acc: task.aggregate_identity(),
                        agg_prev: task.aggregate_identity(),
                        task: Arc::clone(&task),
                        outstanding: 0,
                        involved_cur: batches.len(),
                        crossed: false,
                        next_involved: FxHashSet::default(),
                        touched: FxHashSet::default(),
                        collecting: 0,
                        locals: Vec::new(),
                        iterations: 0,
                        local_iterations: 0,
                        window_iterations: 0,
                        window_local: 0,
                        vertex_updates: 0,
                        remote_messages: 0,
                        started_at: now(&started),
                    };
                    for (w, batch) in batches {
                        t.touched.insert(w);
                        cmd_txs[w]
                            .send(Cmd::Deliver { q, batch })
                            .expect("worker alive");
                        cmd_txs[w]
                            .send(Cmd::Step {
                                q,
                                prev_agg: task.clone_aggregate(&t.agg_prev),
                            })
                            .expect("worker alive");
                        t.outstanding += 1;
                        inflight_ops += 1;
                    }
                    tracking.insert(q, t);
                    true
                }
            }};
        }

        while in_flight < max_parallel {
            let Some(q) = waiting.pop_front() else { break };
            if start_query!(q) {
                in_flight += 1;
            }
        }

        // Event loop.
        while finished < total {
            // Stop-the-world Q-cut phase: runs once the in-flight work has
            // drained (every tracked query is then parked or collected).
            if repart_pending && inflight_ops == 0 {
                let entered_at = now(&started).as_secs_f64();
                let outcome = self.qcut_barrier(&mut tracking, cmd_txs, &resp_rx);
                let applied = outcome.is_some();
                if let Some((ils, migration, locality_before, locality_after)) = outcome {
                    let applied_at = now(&started).as_secs_f64();
                    self.report.repartitions.push(RepartitionEvent {
                        triggered_at: repart_triggered_at,
                        applied_at,
                        barrier_duration: applied_at - entered_at,
                        moved_vertices: migration.moved_vertices,
                        locality_before,
                        locality_after,
                        ils,
                    });
                }
                if applied {
                    // The migration moved pending inboxes between workers:
                    // rebuild every parked query's involved set from the
                    // workers' post-migration pending reports.
                    for tx in cmd_txs {
                        tx.send(Cmd::PendingReport).expect("worker alive");
                    }
                    let mut pending_on: FxHashMap<QueryId, Vec<usize>> = FxHashMap::default();
                    for _ in 0..k {
                        match resp_rx.recv().expect("workers alive") {
                            Resp::Pending { worker, queries } => {
                                for q in queries {
                                    pending_on.entry(q).or_default().push(worker);
                                }
                            }
                            _ => unreachable!("quiesced workers only answer the pending report"),
                        }
                    }
                    for (q, next) in parked.iter_mut() {
                        let mut n = pending_on.remove(q).unwrap_or_default();
                        n.sort_unstable();
                        *next = n;
                    }
                }
                // START: release the parked queries against the (possibly
                // new) layout, then re-open admissions.
                for (q, next) in std::mem::take(&mut parked) {
                    let t = tracking.get_mut(&q).expect("parked queries stay tracked");
                    if next.is_empty() {
                        // Defensive: migration preserves pending messages,
                        // so a parked query cannot lose them — surface the
                        // broken invariant loudly in debug builds, finish
                        // the query rather than deadlock in release.
                        debug_assert!(
                            false,
                            "parked query {q:?} lost its pending messages across a migration"
                        );
                        t.collecting = t.touched.len();
                        for &w in &t.touched {
                            cmd_txs[w].send(Cmd::Collect { q }).expect("worker alive");
                            inflight_ops += 1;
                        }
                        continue;
                    }
                    dispatch_step!(q, t, next);
                }
                repart_pending = false;
                reset_trigger_window!();
                while in_flight < max_parallel {
                    let Some(nq) = waiting.pop_front() else { break };
                    if start_query!(nq) {
                        in_flight += 1;
                    }
                }
                continue;
            }

            let resp = resp_rx.recv().expect("workers alive while queries pending");
            match resp {
                Resp::StepDone {
                    q,
                    executed,
                    remote_sent,
                    agg,
                    remote,
                    self_pending,
                    worker,
                } => {
                    inflight_ops -= 1;
                    self.report.activity.push(ActivitySample {
                        t: now(&started).as_secs_f64(),
                        worker,
                        executed: executed as u64,
                    });
                    worker_activity[worker] += executed;
                    let t = tracking.get_mut(&q).expect("tracked query");
                    t.outstanding -= 1;
                    t.vertex_updates += executed as u64;
                    t.remote_messages += remote_sent;
                    t.crossed |= remote_sent > 0;
                    t.task.aggregate_combine(&mut t.agg_acc, &agg);
                    if self_pending {
                        t.next_involved.insert(worker);
                    }
                    for (w2, batch) in remote {
                        t.next_involved.insert(w2);
                        t.touched.insert(w2);
                        cmd_txs[w2]
                            .send(Cmd::Deliver { q, batch })
                            .expect("worker alive");
                    }
                    if t.outstanding == 0 {
                        t.iterations += 1;
                        t.window_iterations += 1;
                        supersteps_since += 1;
                        // Same definition as the simulated barrier: one
                        // involved worker and nothing crossed a boundary.
                        if t.involved_cur == 1 && !t.crossed {
                            t.local_iterations += 1;
                            t.window_local += 1;
                        }
                        t.crossed = false;
                        let combined =
                            std::mem::replace(&mut t.agg_acc, t.task.aggregate_identity());
                        if t.task.aggregate_sticky() {
                            t.task.aggregate_combine(&mut t.agg_prev, &combined);
                        } else {
                            t.agg_prev = combined;
                        }
                        let mut next: Vec<usize> = t.next_involved.drain().collect();
                        next.sort_unstable();
                        if next.is_empty() || t.task.should_terminate(&t.agg_prev) {
                            // Collect states from every touched worker.
                            t.collecting = t.touched.len();
                            for &w in &t.touched {
                                cmd_txs[w].send(Cmd::Collect { q }).expect("worker alive");
                                inflight_ops += 1;
                            }
                        } else if repart_pending {
                            // STOP: park at the barrier until the Q-cut
                            // phase has run.
                            parked.push((q, next));
                        } else {
                            dispatch_step!(q, t, next);
                        }
                        // Periodic trigger: every `qcut_interval` completed
                        // supersteps, consult the controller thresholds.
                        if !repart_pending && qcut_interval > 0 && supersteps_since >= qcut_interval
                        {
                            if tracking.len() < 2 {
                                // A solo query never repartitions, but its
                                // window must not accumulate either — a
                                // stale solo-phase activity skew would
                                // fire a spurious barrier the moment a
                                // second query is admitted.
                                reset_trigger_window!();
                            } else {
                                // Windowed locality (supersteps since the
                                // last checkpoint): a long query's stale
                                // early history must not keep re-firing
                                // barriers after a successful migration.
                                let mut sum = 0.0f64;
                                let mut active = 0usize;
                                for t in tracking.values() {
                                    if t.window_iterations > 0 {
                                        sum += t.window_local as f64 / t.window_iterations as f64;
                                        active += 1;
                                    }
                                }
                                let mean_locality = if active == 0 {
                                    1.0
                                } else {
                                    sum / active as f64
                                };
                                let imbalance = qgraph_partition::imbalance(&worker_activity);
                                if self.controller.interval_trigger(
                                    mean_locality,
                                    imbalance,
                                    active,
                                ) {
                                    repart_pending = true;
                                    repart_triggered_at = now(&started).as_secs_f64();
                                } else {
                                    reset_trigger_window!();
                                }
                            }
                        }
                    }
                }
                Resp::Collected { q, local } => {
                    inflight_ops -= 1;
                    let t = tracking.get_mut(&q).expect("tracked query");
                    t.locals.extend(local);
                    t.collecting -= 1;
                    if t.collecting == 0 {
                        let t = tracking.remove(&q).expect("present");
                        let at = now(&started);
                        let scope_size: u64 = t.locals.iter().map(|l| l.scope_size() as u64).sum();
                        if qcut_enabled {
                            // Retain the scope for the monitoring window
                            // (only worth materializing when Q-cut runs).
                            let scope: Vec<VertexId> =
                                t.locals.iter().flat_map(|l| l.scope_vertices()).collect();
                            self.controller.record_finished_scope(q, scope, at);
                            self.controller.expire(at);
                        }
                        self.outputs[q.index()] = Some(t.task.finalize(&self.graph, t.locals));
                        self.report.outcomes.push(QueryOutcome {
                            id: q,
                            program: t.task.program_name(),
                            submitted_at: t.started_at,
                            completed_at: at,
                            iterations: t.iterations,
                            local_iterations: t.local_iterations,
                            vertex_updates: t.vertex_updates,
                            remote_messages: t.remote_messages,
                            scope_size,
                        });
                        finished += 1;
                        in_flight -= 1;
                        // Closed loop: admit the next waiting query (held
                        // back while a repartition barrier is pending).
                        while !repart_pending && in_flight < max_parallel {
                            let Some(nq) = waiting.pop_front() else { break };
                            if start_query!(nq) {
                                in_flight += 1;
                            }
                        }
                    }
                }
                _ => unreachable!("barrier responses are consumed synchronously"),
            }
        }
        self.report.finished_at_secs = base + started.elapsed().as_secs_f64();
    }

    /// The stop-the-world Q-cut phase body (workers quiescent): gather
    /// scope statistics, run the ILS, migrate the resolved vertex
    /// transfers across the worker channels, commit + broadcast the new
    /// assignment. Returns `None` when the phase decides not to
    /// repartition (too few scopes, empty plan, or nothing to move).
    #[allow(clippy::type_complexity)]
    fn qcut_barrier(
        &mut self,
        tracking: &mut FxHashMap<QueryId, QueryTracking>,
        cmd_txs: &[Sender<Cmd>],
        resp_rx: &Receiver<Resp>,
    ) -> Option<(IlsResult, Migration, f64, f64)> {
        let cfg = self.cfg.qcut.clone()?;
        let k = cmd_txs.len();

        // Aggregate per-scope statistics from the live query state.
        for tx in cmd_txs {
            tx.send(Cmd::ScopeReport).expect("worker alive");
        }
        let mut scope_map: FxHashMap<(QueryId, usize), Vec<VertexId>> = FxHashMap::default();
        let mut per_query: FxHashMap<QueryId, Vec<VertexId>> = FxHashMap::default();
        for _ in 0..k {
            match resp_rx.recv().expect("workers alive") {
                Resp::Scopes { worker, scopes } => {
                    for (q, vs) in scopes {
                        if !tracking.contains_key(&q) {
                            continue;
                        }
                        per_query.entry(q).or_default().extend(vs.iter().copied());
                        scope_map.insert((q, worker), vs);
                    }
                }
                _ => unreachable!("quiesced workers only answer the scope report"),
            }
        }
        let mut live: Vec<(QueryId, Vec<VertexId>)> = per_query.into_iter().collect();
        live.sort_unstable_by_key(|(q, _)| *q);

        let stats = self.controller.build_scope_stats(&live, &self.partitioning);
        if stats.queries.len() < 2 {
            return None;
        }
        let result = run_qcut(&stats, &cfg);
        if result.plan.is_empty() {
            return None;
        }

        // Resolve the plan: live scopes from the snapshot just gathered,
        // finished queries from the controller's retained scopes.
        let migration = {
            let controller = &self.controller;
            let mut scope_of = |q: QueryId, w: usize| -> Vec<VertexId> {
                if tracking.contains_key(&q) {
                    scope_map.get(&(q, w)).cloned().unwrap_or_default()
                } else {
                    controller
                        .finished_scope(q)
                        .map(|vs| vs.to_vec())
                        .unwrap_or_default()
                }
            };
            migrate::resolve_plan(&result.plan, &self.partitioning, &mut scope_of)
        };
        if migration.is_empty() {
            return None;
        }
        let observed = self.controller.observed_scopes(&live);
        let (locality_before, locality_after) =
            migrate::apply_measured(&migration, &mut self.partitioning, &observed, || {
                // Migrate vertex ownership and in-flight program state
                // across the worker channels. All extracts are issued up
                // front (independent source workers run them in parallel);
                // each response is forwarded to its destination as it
                // arrives. Safe to interleave because the resolved moves'
                // vertex sets are pairwise disjoint — an inject can never
                // overlap a still-queued extract on the same worker.
                for (token, mv) in migration.moves.iter().enumerate() {
                    cmd_txs[mv.from]
                        .send(Cmd::Extract {
                            token,
                            vertices: mv.vertices.clone(),
                        })
                        .expect("worker alive");
                }
                for _ in 0..migration.moves.len() {
                    let (token, data) = match resp_rx.recv().expect("workers alive") {
                        Resp::Extracted { token, data } => (token, data),
                        _ => unreachable!("quiesced workers only answer the extract"),
                    };
                    let mv = &migration.moves[token];
                    for (q, _) in &data {
                        if let Some(t) = tracking.get_mut(q) {
                            t.touched.insert(mv.to);
                        }
                    }
                    if !data.is_empty() {
                        cmd_txs[mv.to]
                            .send(Cmd::Inject { data })
                            .expect("worker alive");
                    }
                }
            });

        // Broadcast the new assignment before anything resumes: every
        // subsequent superstep routes against the new owners.
        let shared = Arc::new(self.partitioning.clone());
        for tx in cmd_txs {
            tx.send(Cmd::SetPartitioning(Arc::clone(&shared)))
                .expect("worker alive");
        }
        Some((result, migration, locality_before, locality_after))
    }
}

fn worker_loop(
    id: usize,
    graph: Arc<Graph>,
    mut partitioning: Arc<Partitioning>,
    registry: Arc<Vec<Arc<dyn QueryTask>>>,
    rx: Receiver<Cmd>,
    resp: Sender<Resp>,
) {
    let mut worker = Worker::new(id);
    let task_of = |q: QueryId| -> Arc<dyn QueryTask> { Arc::clone(&registry[q.index()]) };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Deliver { q, batch } => {
                worker.deliver(registry[q.index()].as_ref(), q, batch);
            }
            Cmd::Step { q, prev_agg } => {
                let task = registry[q.index()].as_ref();
                worker.freeze(q);
                let route = |v: VertexId| partitioning.worker_of(v).index();
                let (stats, agg, remote) = worker.execute(q, task, &graph, &prev_agg, &route);
                let self_pending = worker.has_pending(q);
                resp.send(Resp::StepDone {
                    q,
                    executed: stats.executed,
                    remote_sent: stats.remote_deliveries as u64,
                    agg,
                    remote,
                    self_pending,
                    worker: id,
                })
                .expect("controller alive");
            }
            Cmd::Collect { q } => {
                let local = worker.take_local(q);
                resp.send(Resp::Collected { q, local })
                    .expect("controller alive");
            }
            Cmd::ScopeReport => {
                let mut qs: Vec<QueryId> = worker.active_queries().collect();
                qs.sort_unstable();
                let scopes: Vec<(QueryId, Vec<VertexId>)> = qs
                    .into_iter()
                    .map(|q| {
                        let mut vs = worker.scope_vertices(q);
                        vs.sort_unstable();
                        (q, vs)
                    })
                    .collect();
                resp.send(Resp::Scopes { worker: id, scopes })
                    .expect("controller alive");
            }
            Cmd::Extract { token, vertices } => {
                let set: FxHashSet<VertexId> = vertices.into_iter().collect();
                let data = worker.extract_vertices(&task_of, &set);
                resp.send(Resp::Extracted { token, data })
                    .expect("controller alive");
            }
            Cmd::Inject { data } => {
                worker.inject_vertices(&task_of, data);
            }
            Cmd::SetPartitioning(p) => {
                partitioning = p;
            }
            Cmd::PendingReport => {
                let mut queries: Vec<QueryId> = worker
                    .active_queries()
                    .filter(|&q| worker.has_pending(q))
                    .collect();
                queries.sort_unstable();
                resp.send(Resp::Pending {
                    worker: id,
                    queries,
                })
                .expect("controller alive");
            }
            Cmd::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QcutConfig;
    use crate::programs::{PingProgram, ReachProgram};
    use qgraph_graph::GraphBuilder;
    use qgraph_partition::{Partitioner, RangePartitioner};

    fn line(n: usize) -> Arc<Graph> {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        Arc::new(b.build())
    }

    #[test]
    fn single_query_runs_to_completion() {
        let g = line(12);
        let parts = RangePartitioner.partition(&g, 3);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        assert_eq!(e.output(&q).unwrap().len(), 12);
        assert_eq!(e.report().outcomes.len(), 1);
        let o = &e.report().outcomes[0];
        assert_eq!(o.iterations, 12);
        assert_eq!(o.program, "reach");
    }

    #[test]
    fn many_parallel_queries() {
        let g = line(64);
        let parts = RangePartitioner.partition(&g, 4);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let qs: Vec<_> = (0..12u32)
            .map(|i| e.submit(ReachProgram::bounded(VertexId(i * 5), 4)))
            .collect();
        e.run();
        assert_eq!(e.report().outcomes.len(), 12);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id(), QueryId(i as u32));
            assert!(!e.output(q).unwrap().is_empty());
        }
    }

    #[test]
    fn heterogeneous_queries_in_one_run() {
        let g = line(16);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let reach = e.submit(ReachProgram::bounded(VertexId(0), 5));
        let ping = e.submit(PingProgram {
            ring: vec![VertexId(2), VertexId(14)],
            rounds: 6,
        });
        e.run();
        assert_eq!(e.output(&reach).unwrap().len(), 6);
        assert_eq!(*e.output(&ping).unwrap(), 5);
        let mut programs: Vec<&str> = e.report().outcomes.iter().map(|o| o.program).collect();
        programs.sort_unstable();
        assert_eq!(programs, vec!["ping", "reach"]);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let g = line(4);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = ThreadEngine::new(g, parts);
        e.run();
        assert!(e.report().outcomes.is_empty());
    }

    #[test]
    fn run_then_submit_then_run_again() {
        let g = line(8);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let q1 = e.submit(ReachProgram::new(VertexId(3)));
        e.run();
        let q2 = e.submit(ReachProgram::new(VertexId(6)));
        e.run();
        assert_eq!(e.output(&q1).unwrap().len(), 5);
        assert_eq!(e.output(&q2).unwrap().len(), 2);
        assert_eq!(e.report().outcomes.len(), 2);
    }

    #[test]
    fn locality_matches_sim_engine_definition() {
        // The superstep crossing the 5->6 partition boundary runs on one
        // worker but sends a remote message: per the canonical rule
        // (`barrier::decide`: one involved worker AND nothing crossed) it
        // must not count as local — same as the simulated engine.
        let g = line(12);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let q = e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        assert_eq!(e.output(&q).unwrap().len(), 12);
        let o = &e.report().outcomes[0];
        assert!(o.remote_messages >= 1);
        assert!(o.locality() < 1.0, "crossing superstep counted as local");
    }

    #[test]
    fn report_time_base_is_monotonic_across_runs() {
        let g = line(8);
        let parts = RangePartitioner.partition(&g, 2);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        e.submit(ReachProgram::new(VertexId(0)));
        e.run();
        let first_end = e.report().finished_at_secs;
        e.submit(ReachProgram::new(VertexId(4)));
        e.run();
        let report = e.report();
        assert!(report.finished_at_secs >= first_end);
        for o in &report.outcomes {
            assert!(
                o.completed_at.as_secs_f64() <= report.finished_at_secs + 1e-9,
                "outcome completes after the report's end"
            );
        }
        let second = &report.outcomes[1];
        assert!(second.submitted_at.as_secs_f64() >= first_end - 1e-9);
    }

    #[test]
    fn single_worker_partition() {
        let g = line(8);
        let parts = RangePartitioner.partition(&g, 1);
        let mut e = ThreadEngine::new(Arc::clone(&g), parts);
        let q = e.submit(ReachProgram::new(VertexId(3)));
        e.run();
        assert_eq!(e.output(&q).unwrap().len(), 5);
        assert_eq!(e.report().outcomes[0].locality(), 1.0);
    }

    #[test]
    fn closed_loop_respects_max_parallel() {
        let g = line(32);
        let parts = RangePartitioner.partition(&g, 2);
        let cfg = SystemConfig {
            max_parallel_queries: 2,
            ..Default::default()
        };
        let mut e = ThreadEngine::with_config(Arc::clone(&g), parts, cfg);
        let qs: Vec<_> = (0..6u32)
            .map(|i| e.submit(ReachProgram::bounded(VertexId(i), 2)))
            .collect();
        e.run();
        assert_eq!(e.report().outcomes.len(), 6);
        for q in qs {
            assert!(e.output(&q).is_some());
        }
    }

    /// An aggressive Q-cut cadence on an adversarial partition: two long
    /// reach queries whose scopes interleave across both workers. The
    /// stop-the-world phase must fire, gather each scope, and preserve the
    /// answers.
    #[test]
    fn qcut_barrier_repartitions_and_preserves_answers() {
        let g = line(64);
        // Interleaved assignment: every reach superstep crosses a
        // boundary, so mean locality is ~0 and the trigger always fires.
        let assign: Vec<qgraph_partition::WorkerId> =
            (0..64).map(|v| qgraph_partition::WorkerId(v % 2)).collect();
        let parts = Partitioning::new(assign, 2);
        let cfg = SystemConfig {
            qcut: Some(QcutConfig {
                qcut_interval: 4,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut e = ThreadEngine::with_config(Arc::clone(&g), parts, cfg);
        let a = e.submit(ReachProgram::new(VertexId(0)));
        let b = e.submit(ReachProgram::new(VertexId(1)));
        e.run();
        assert_eq!(e.output(&a).unwrap().len(), 64);
        assert_eq!(e.output(&b).unwrap().len(), 63);
        let report = e.report();
        assert!(
            !report.repartitions.is_empty(),
            "interleaved partition + low locality must trigger Q-cut"
        );
        for r in &report.repartitions {
            assert!(r.moved_vertices > 0);
            assert!(r.ils.final_cost <= r.ils.initial_cost + 1e-9);
            assert!(r.applied_at >= r.triggered_at);
        }
        // The assignment actually changed and still covers the graph.
        assert_eq!(e.partitioning().num_vertices(), 64);
        assert_eq!(e.partitioning().sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn zero_interval_keeps_the_thread_runtime_static() {
        let g = line(32);
        let assign: Vec<qgraph_partition::WorkerId> =
            (0..32).map(|v| qgraph_partition::WorkerId(v % 2)).collect();
        let parts = Partitioning::new(assign, 2);
        let before = parts.clone();
        let cfg = SystemConfig {
            qcut: Some(QcutConfig {
                qcut_interval: 0,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut e = ThreadEngine::with_config(Arc::clone(&g), parts, cfg);
        let a = e.submit(ReachProgram::new(VertexId(0)));
        let b = e.submit(ReachProgram::new(VertexId(1)));
        e.run();
        assert_eq!(e.output(&a).unwrap().len(), 32);
        assert_eq!(e.output(&b).unwrap().len(), 31);
        assert!(e.report().repartitions.is_empty());
        assert_eq!(e.partitioning(), &before, "assignment untouched");
    }
}
