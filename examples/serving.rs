//! The streaming/serving loop end to end: a long-lived `ThreadEngine`
//! absorbs an open-loop query stream submitted from two producer threads
//! through cloned `EngineClient` handles while Q-cut repartitions
//! underneath, with a per-program-kind priority admission policy. The
//! report shows per-program outcomes plus the serving metrics the policy
//! layer exists for: queueing delay and time in system.
//!
//! ```text
//! cargo run -p qgraph-examples --bin serving
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qgraph_algo::{PoiProgram, SsspProgram};
use qgraph_core::{AdmissionPolicy, EngineBuilder, QcutConfig, SystemConfig};
use qgraph_partition::HashPartitioner;
use qgraph_workload::{
    assign_tags, schedule_open_loop, ArrivalConfig, QueryKind, RoadNetworkConfig,
    RoadNetworkGenerator, WorkloadConfig, WorkloadGenerator,
};

fn main() {
    let mut world = RoadNetworkGenerator::new(RoadNetworkConfig {
        num_cities: 4,
        vertices_per_city: 400,
        seed: 42,
        ..RoadNetworkConfig::default()
    })
    .generate();
    assign_tags(&mut world.graph, 1.0 / 60.0, 5);

    // Two open-loop streams over the hotspot workload: an SSSP stream and
    // a smaller POI stream. Arrival times come from the workload crate's
    // Poisson process; the producers replay them with (scaled) sleeps.
    let gen = WorkloadGenerator::new(&world);
    let sssp_stream = schedule_open_loop(
        &gen.generate(&WorkloadConfig::single(48, false, false, 1)),
        &ArrivalConfig::poisson(48, 4000.0, 11),
    );
    let poi_stream = schedule_open_loop(
        &gen.generate(&WorkloadConfig::single(16, true, false, 2)),
        &ArrivalConfig::poisson(16, 1500.0, 13),
    );
    let graph = Arc::new(world.graph.clone());

    let cfg = SystemConfig {
        qcut: Some(QcutConfig {
            qcut_interval: 6,
            ..Default::default()
        }),
        // POI lookups are latency-sensitive point queries: let them
        // overtake queued SSSP scans.
        admission: AdmissionPolicy::priorities(&[("poi", 10), ("sssp", 1)]),
        max_parallel_queries: 8,
        ..Default::default()
    };
    let mut engine = EngineBuilder::new(Arc::clone(&graph))
        .workers(4)
        .partitioner(HashPartitioner::default())
        .config(cfg)
        .build_threaded();
    engine.start();

    let sssp_client = engine.client();
    let sssp_producer = thread::spawn(move || {
        let mut last = 0.0f64;
        for tq in &sssp_stream {
            thread::sleep(Duration::from_secs_f64(tq.at_secs - last));
            last = tq.at_secs;
            if let QueryKind::Sssp { source, target } = tq.spec.kind {
                sssp_client.submit(SsspProgram::new(source, target));
            }
        }
        sssp_stream.len()
    });
    let poi_client = engine.client();
    let poi_producer = thread::spawn(move || {
        let mut last = 0.0f64;
        for tq in &poi_stream {
            thread::sleep(Duration::from_secs_f64(tq.at_secs - last));
            last = tq.at_secs;
            if let QueryKind::Poi { source } = tq.spec.kind {
                poi_client.submit(PoiProgram::new(source));
            }
        }
        poi_stream.len()
    });

    let submitted =
        sssp_producer.join().expect("sssp producer") + poi_producer.join().expect("poi producer");
    let report = engine.drain().clone();
    engine.shutdown();

    println!(
        "served {} of {} streamed queries in {:.3}s wall",
        report.outcomes.len(),
        submitted,
        report.finished_at_secs
    );
    println!("{}", report.program_table().render());
    println!(
        "queueing delay: mean {:.6}s | time in system: mean {:.6}s",
        report.mean_queueing_delay(),
        report.mean_time_in_system()
    );
    println!(
        "repartitions mid-stream: {} ({} vertices migrated)",
        report.repartitions.len(),
        report.total_moved_vertices()
    );
    for (i, r) in report.repartitions.iter().enumerate() {
        println!(
            "  repartition {i}: moved {:5} vertices, scope locality {:.3} -> {:.3}",
            r.moved_vertices, r.locality_before, r.locality_after
        );
    }
    for w in &report.runs {
        println!(
            "run window {}: {} outcomes, {:.3}s..{:.3}s",
            w.index,
            w.outcomes_end - w.outcomes_start,
            w.started_at_secs,
            w.finished_at_secs
        );
    }
}
