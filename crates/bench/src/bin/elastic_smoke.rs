//! Elastic-parallelism smoke benchmark: the morsel pool's two headline
//! claims, measured in deterministic simulated time and emitted as
//! `BENCH_elastic.json` (uploaded by the `elastic-stress` CI job).
//!
//! **Phase A — idle-engine DoP.** One whole-graph WCC on an otherwise
//! idle engine: with `DopPolicy::Fixed(1)` its per-partition tasks run
//! one at a time; with `DopPolicy::Adaptive` the analytic fans to the
//! pool width. Same outputs, same task count — completion time must
//! drop with the wider budget.
//!
//! **Phase B — saturation knee.** An open-loop Poisson stream of mixed
//! traffic (road SSSP point queries with deep k-hop floods riding
//! along) swept across arrival rates, comparing two engines at *equal
//! thread count* `T`:
//! * `fixed`   — `T` partitions, pool width `T`, `DopPolicy::Fixed(T)`:
//!   the pre-elastic engine, one coarse compute lane per partition and
//!   every query fanned to everything it touches;
//! * `elastic` — `4·T` partitions, pool width `T`,
//!   `DopPolicy::Adaptive`: finer morsels multiplexed over the same
//!   thread budget, point queries pinned to DoP 1.
//!
//! The knee is where each latency-throughput curve leaves its own flat
//! region: the highest arrival rate whose p95 time-in-system stays
//! under 4× that configuration's *own* idle-probe p95 (the classic
//! hockey-stick definition — finer partitions buy a higher per-query
//! floor, so an absolute threshold would conflate per-query cost with
//! saturation; the absolute curves are emitted alongside so nothing is
//! hidden). The elastic engine must hold its flat region to a strictly
//! higher arrival rate than the fixed baseline.
//!
//! Env knobs: `QGRAPH_SCALE` (graph scale, default 0.08),
//! `QGRAPH_QUERIES` (point queries per sweep run, default 80),
//! `QGRAPH_THREADS` (thread budget `T`, default 4),
//! `QGRAPH_BENCH_JSON` (output path, default `BENCH_elastic.json`).

#![forbid(unsafe_code)]

use std::sync::Arc;

use qgraph_algo::{BfsProgram, RoadProgram, WccProgram};
use qgraph_bench::{build_network, partition_graph, GraphPreset, Strategy};
use qgraph_core::{DopPolicy, EngineReport, SimEngine, SystemConfig};
use qgraph_graph::{Graph, VertexId};
use qgraph_partition::Partitioning;
use qgraph_sim::ClusterModel;
use qgraph_workload::{
    arrival_times, ArrivalConfig, QueryKind, QuerySpec, RoadNetwork, WorkloadConfig,
    WorkloadGenerator,
};

/// One job of the mixed open-loop stream.
enum Job {
    /// A road point query (pinned to DoP 1 under `Adaptive`).
    Point { source: VertexId, target: VertexId },
    /// A deep k-hop flood (fans to the pool width under `Adaptive`).
    Flood { source: VertexId, depth: u32 },
}

/// The mixed serving traffic: every point query from the generated road
/// workload, with a deep flood riding along every eighth submission.
fn mixed_jobs(specs: &[QuerySpec], graph_vertices: u32) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        match s.kind {
            QueryKind::Sssp { source, target } => jobs.push(Job::Point { source, target }),
            QueryKind::Poi { source } => jobs.push(Job::Flood { source, depth: 8 }),
        }
        if i % 8 == 4 {
            jobs.push(Job::Flood {
                source: VertexId((i as u32 * 257 + 13) % graph_vertices),
                depth: 24,
            });
        }
    }
    jobs
}

/// Run the job stream open-loop at `rate_qps` (Poisson arrivals) on one
/// engine configuration; returns the finished report.
fn run_stream(
    graph: &Arc<Graph>,
    parts: &Partitioning,
    jobs: &[Job],
    dop: DopPolicy,
    pool_threads: usize,
    rate_qps: f64,
) -> EngineReport {
    let mut engine = SimEngine::new(
        Arc::clone(graph),
        ClusterModel::scale_up(parts.num_workers()),
        parts.clone(),
        SystemConfig {
            pool_threads,
            dop,
            ..Default::default()
        },
    );
    let times = arrival_times(&ArrivalConfig::poisson(jobs.len(), rate_qps, 23));
    for (job, at) in jobs.iter().zip(times) {
        match *job {
            Job::Point { source, target } => {
                engine.submit_at(RoadProgram::sssp(source, target), at);
            }
            Job::Flood { source, depth } => {
                engine.submit_at(BfsProgram::new(source, depth), at);
            }
        }
    }
    engine.run().clone()
}

/// Phase A: one whole-graph WCC alone on the engine, under a DoP budget.
fn run_idle_analytic(graph: &Arc<Graph>, parts: &Partitioning, dop: DopPolicy) -> EngineReport {
    let mut engine = SimEngine::new(
        Arc::clone(graph),
        ClusterModel::scale_up(parts.num_workers()),
        parts.clone(),
        SystemConfig {
            dop,
            ..Default::default()
        },
    );
    engine.submit(WccProgram);
    engine.run().clone()
}

struct SweepPoint {
    rate_qps: f64,
    p95_s: f64,
    mean_s: f64,
    completed: usize,
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"rate_qps\": {:.1}, \"p95_s\": {:.6}, \"mean_s\": {:.6}, \"completed\": {}}}",
                p.rate_qps, p.p95_s, p.mean_s, p.completed
            )
        })
        .collect();
    format!("[\n      {}\n    ]", rows.join(",\n      "))
}

/// Highest swept rate whose p95 stays under the threshold (0.0 when even
/// the lowest rate blows the budget).
fn knee_of(points: &[SweepPoint], threshold_s: f64) -> f64 {
    points
        .iter()
        .filter(|p| p.p95_s <= threshold_s)
        .map(|p| p.rate_qps)
        .fold(0.0, f64::max)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("QGRAPH_SCALE", 0.08);
    let queries = env_f64("QGRAPH_QUERIES", 80.0) as usize;
    let threads = env_f64("QGRAPH_THREADS", 4.0) as usize;
    let out_path =
        std::env::var("QGRAPH_BENCH_JSON").unwrap_or_else(|_| "BENCH_elastic.json".to_string());

    let net: RoadNetwork = build_network(GraphPreset::BwLike { scale }, 0.0, 19);
    let specs =
        WorkloadGenerator::new(&net).generate(&WorkloadConfig::single(queries, false, false, 19));
    // Hash partitioning on purpose: frontiers spread across partitions,
    // so scheduling — not placement — is the variable under test.
    let parts_fixed = partition_graph(Strategy::Hash, &net, threads, 19);
    let parts_elastic = partition_graph(Strategy::Hash, &net, 4 * threads, 19);
    let parts_idle = partition_graph(Strategy::Hash, &net, 8, 19);
    let graph = Arc::new(net.graph);
    let jobs = mixed_jobs(&specs, graph.num_vertices() as u32);

    // ---- Phase A: heavy analytic on an idle engine, DoP 1 vs adaptive.
    let idle_serial = run_idle_analytic(&graph, &parts_idle, DopPolicy::Fixed(1));
    let idle_elastic = run_idle_analytic(&graph, &parts_idle, DopPolicy::Adaptive);
    let serial_secs = idle_serial.outcomes[0].time_in_system_secs();
    let elastic_secs = idle_elastic.outcomes[0].time_in_system_secs();
    let idle_speedup = serial_secs / elastic_secs.max(1e-12);

    // ---- Phase B: calibrate, then sweep the arrival rate.
    // Probe each configuration at 1 query/sec: virtual service times are
    // milliseconds at these scales, so the stream is effectively idle —
    // each curve's own flat-region floor.
    let probe_fixed = run_stream(
        &graph,
        &parts_fixed,
        &jobs,
        DopPolicy::Fixed(threads),
        threads,
        1.0,
    );
    let probe_elastic = run_stream(
        &graph,
        &parts_elastic,
        &jobs,
        DopPolicy::Adaptive,
        threads,
        1.0,
    );
    let idle_p95_fixed = probe_fixed.slo().time_in_system.p95;
    let idle_p95_elastic = probe_elastic.slo().time_in_system.p95;
    let thr_fixed = 4.0 * idle_p95_fixed;
    let thr_elastic = 4.0 * idle_p95_elastic;
    let probe_slo = probe_fixed.slo();
    let svc_mean = (probe_slo.time_in_system.p50 + probe_slo.time_in_system.p95) / 2.0;
    // Rate ladder around the perfect-parallelism capacity estimate.
    let capacity_est = threads as f64 / svc_mean.max(1e-9);
    let fractions = [0.25, 0.375, 0.56, 0.84, 1.27, 1.9, 2.85, 4.27, 6.4];

    let mut fixed_pts = Vec::new();
    let mut elastic_pts = Vec::new();
    for f in fractions {
        let rate = f * capacity_est;
        for (pts, parts, dop) in [
            (&mut fixed_pts, &parts_fixed, DopPolicy::Fixed(threads)),
            (&mut elastic_pts, &parts_elastic, DopPolicy::Adaptive),
        ] {
            let report = run_stream(&graph, parts, &jobs, dop, threads, rate);
            let slo = report.slo();
            pts.push(SweepPoint {
                rate_qps: rate,
                p95_s: slo.time_in_system.p95,
                mean_s: slo.time_in_system.p50,
                completed: slo.completed,
            });
        }
    }
    let fixed_knee = knee_of(&fixed_pts, thr_fixed);
    let elastic_knee = knee_of(&elastic_pts, thr_elastic);

    let json = format!(
        "{{\n  \"bench\": \"elastic_smoke\",\n  \"graph_vertices\": {},\n  \"threads\": {},\n  \
         \"jobs_per_run\": {},\n  \"idle_analytic\": {{\n    \"serial_secs\": {:.6},\n    \
         \"elastic_secs\": {:.6},\n    \"speedup\": {:.3},\n    \"serial_effective_dop\": {},\n    \
         \"elastic_effective_dop\": {}\n  }},\n  \"knee\": {{\n    \"idle_p95_fixed_s\": {:.6},\n    \"idle_p95_elastic_s\": {:.6},\n    \
         \"slo_threshold_fixed_s\": {:.6},\n    \"slo_threshold_elastic_s\": {:.6},\n    \
         \"capacity_est_qps\": {:.1},\n    \"fixed\": {},\n    \"elastic\": {},\n    \
         \"fixed_knee_qps\": {:.1},\n    \"elastic_knee_qps\": {:.1},\n    \
         \"knee_shift\": {:.3}\n  }}\n}}\n",
        graph.num_vertices(),
        threads,
        jobs.len(),
        serial_secs,
        elastic_secs,
        idle_speedup,
        idle_serial.outcomes[0].effective_dop,
        idle_elastic.outcomes[0].effective_dop,
        idle_p95_fixed,
        idle_p95_elastic,
        thr_fixed,
        thr_elastic,
        capacity_est,
        sweep_json(&fixed_pts),
        sweep_json(&elastic_pts),
        fixed_knee,
        elastic_knee,
        elastic_knee / fixed_knee.max(1e-9),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("{json}");
    println!("wrote {out_path}");

    // Sanity for CI — the two acceptance claims, on deterministic
    // virtual-time measurements (no host-noise flakiness):
    // 1. a heavy analytic granted DoP > 1 finishes faster on an idle
    //    engine than the same analytic serialized to DoP 1;
    assert!(
        elastic_secs < serial_secs,
        "idle analytic must speed up with DoP > 1: serial {serial_secs:.6}s vs elastic {elastic_secs:.6}s"
    );
    assert!(
        idle_elastic.outcomes[0].effective_dop > 1,
        "adaptive budget must actually fan the analytic out"
    );
    // 2. at equal thread count, the elastic engine holds its flat region
    //    to a strictly higher arrival rate than the fixed baseline: the
    //    saturation knee shifts right.
    assert!(
        elastic_knee > fixed_knee,
        "elastic knee did not shift right of the fixed baseline: {elastic_knee:.1} vs {fixed_knee:.1} qps"
    );
    assert!(
        fixed_knee > 0.0,
        "threshold calibration broken: even the idle-most rate violated the SLO"
    );
    assert!(
        elastic_knee < fractions.last().expect("non-empty ladder") * capacity_est,
        "elastic knee must be interior to the swept ladder, not a ceiling artifact"
    );
    // Both engines must finish the whole stream at every rate (open
    // queue, no rejections) — the knee is about latency, not loss.
    for p in fixed_pts.iter().chain(elastic_pts.iter()) {
        assert_eq!(
            p.completed,
            jobs.len(),
            "every job completes at {:.1} qps",
            p.rate_qps
        );
    }
}
