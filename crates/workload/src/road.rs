//! Synthetic road networks with urban hotspots.
//!
//! A network is a set of *cities* placed in a square map. Each city is a
//! jittered street grid (4-neighbour connectivity, low degree like real
//! road junctions); cities are linked by multi-segment *highways* to their
//! nearest neighbours. Edge weights are travel times: segment length
//! divided by a street / highway speed, mirroring the paper's
//! `length / speed-limit` weighting. City populations follow a Zipf law and
//! determine both the city's vertex count and — in the workload generator —
//! its query arrival share, reproducing the paper's "queries per city
//! proportional to population" hotspots.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qgraph_graph::{Graph, GraphBuilder, RegionId, VertexId, VertexProps};

/// One generated city.
#[derive(Clone, Debug)]
pub struct City {
    /// Region label carried by the city's vertices.
    pub region: RegionId,
    /// Map position of the city centre.
    pub center: (f32, f32),
    /// Zipf population weight (arbitrary units; only ratios matter).
    pub population: f64,
    /// Vertex ids `first..first + count` belong to this city's street grid.
    pub first_vertex: u32,
    /// Number of street-grid vertices.
    pub count: u32,
}

impl City {
    /// Iterate over the city's vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (self.first_vertex..self.first_vertex + self.count).map(VertexId)
    }
}

/// Configuration for [`RoadNetworkGenerator`].
#[derive(Clone, Debug)]
pub struct RoadNetworkConfig {
    /// Number of cities (paper: 64 for GY, 16 for BW).
    pub num_cities: usize,
    /// Street-grid vertices of the *largest* city; smaller cities scale by
    /// population share.
    pub vertices_per_city: usize,
    /// Zipf exponent for populations (1.0 ≈ classic city-size law).
    pub zipf_exponent: f64,
    /// Side length of the square map, in kilometres.
    pub map_size_km: f32,
    /// Street speed inside cities, km/h.
    pub street_speed: f32,
    /// Highway speed between cities, km/h.
    pub highway_speed: f32,
    /// Each city connects to this many nearest neighbour cities.
    pub highways_per_city: usize,
    /// Approximate highway segment length, km (controls the number of
    /// intermediate highway vertices).
    pub highway_segment_km: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            num_cities: 16,
            vertices_per_city: 4_000,

            // fitting the 16 biggest Baden-Württemberg cities gives ≈ 0.7.
            zipf_exponent: 0.7,
            map_size_km: 300.0,
            street_speed: 50.0,
            highway_speed: 120.0,
            highways_per_city: 3,
            highway_segment_km: 2.0,
            seed: 42,
        }
    }
}

impl RoadNetworkConfig {
    /// A Baden-Württemberg-like preset: 16 cities (paper §4.1). `scale`
    /// multiplies the vertex budget; `scale = 1` gives ≈ 60 k vertices,
    /// laptop-friendly while preserving the hotspot structure.
    pub fn bw_like(scale: f64, seed: u64) -> Self {
        RoadNetworkConfig {
            num_cities: 16,
            vertices_per_city: (4_000.0 * scale) as usize,
            map_size_km: 250.0,
            seed,
            ..Default::default()
        }
    }

    /// A Germany-like preset: 64 cities (paper §4.1), ≈ 4× the BW vertex
    /// count at the same `scale`.
    pub fn gy_like(scale: f64, seed: u64) -> Self {
        RoadNetworkConfig {
            num_cities: 64,
            vertices_per_city: (4_000.0 * scale) as usize,
            map_size_km: 650.0,
            seed,
            ..Default::default()
        }
    }
}

/// A generated road network: the graph plus its city table.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    /// The street + highway graph (region labels and coordinates attached).
    pub graph: Graph,
    /// City table, indexed by `RegionId`.
    pub cities: Vec<City>,
    /// The configuration that produced this network.
    pub config: RoadNetworkConfig,
}

impl RoadNetwork {
    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Population-proportional sampling weights over cities.
    pub fn population_weights(&self) -> Vec<f64> {
        self.cities.iter().map(|c| c.population).collect()
    }
}

/// Generates [`RoadNetwork`]s. Deterministic for a given config (seed included).
pub struct RoadNetworkGenerator {
    config: RoadNetworkConfig,
}

impl RoadNetworkGenerator {
    /// A generator for the given configuration.
    pub fn new(config: RoadNetworkConfig) -> Self {
        assert!(config.num_cities >= 1, "need at least one city");
        assert!(config.vertices_per_city >= 4, "cities need a few vertices");
        RoadNetworkGenerator { config }
    }

    /// Generate the network.
    pub fn generate(&self) -> RoadNetwork {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // --- City placement & populations --------------------------------
        let centers = place_city_centers(cfg, &mut rng);
        let populations: Vec<f64> = (0..cfg.num_cities)
            .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent))
            .collect();
        let max_pop = populations[0];

        // --- City street grids -------------------------------------------
        let mut cities = Vec::with_capacity(cfg.num_cities);
        let mut coords: Vec<(f32, f32)> = Vec::new();
        let mut regions: Vec<RegionId> = Vec::new();
        let mut edges: Vec<(u32, u32, f32)> = Vec::new();
        let mut next_vertex: u32 = 0;

        for (i, (&center, &pop)) in centers.iter().zip(&populations).enumerate() {
            let count = ((cfg.vertices_per_city as f64) * (pop / max_pop))
                .round()
                .max(4.0) as u32;
            let side = (count as f32).sqrt().ceil() as u32;
            // Street spacing ~100 m; city radius grows with its grid.
            let spacing = 0.1f32;
            let first_vertex = next_vertex;
            let mut placed = 0u32;
            for gy in 0..side {
                for gx in 0..side {
                    if placed >= count {
                        break;
                    }
                    let jitter = |r: &mut SmallRng| (r.gen::<f32>() - 0.5) * spacing * 0.4;
                    let x = center.0 + (gx as f32 - side as f32 / 2.0) * spacing + jitter(&mut rng);
                    let y = center.1 + (gy as f32 - side as f32 / 2.0) * spacing + jitter(&mut rng);
                    coords.push((x, y));
                    regions.push(RegionId(i as u32));
                    let id = first_vertex + placed;
                    // 4-neighbour street connectivity.
                    if gx > 0 && placed >= 1 {
                        push_road(&mut edges, &coords, id, id - 1, cfg.street_speed);
                    }
                    if gy > 0 && placed >= side {
                        push_road(&mut edges, &coords, id, id - side, cfg.street_speed);
                    }
                    placed += 1;
                }
            }
            next_vertex += placed;
            cities.push(City {
                region: RegionId(i as u32),
                center,
                population: pop,
                first_vertex,
                count: placed,
            });
        }

        // --- Highways -----------------------------------------------------
        let mut linked: std::collections::BTreeSet<(usize, usize)> = Default::default();
        for a in 0..cfg.num_cities {
            let mut others: Vec<usize> = (0..cfg.num_cities).filter(|&b| b != a).collect();
            others.sort_by(|&x, &y| {
                dist(centers[a], centers[x])
                    .partial_cmp(&dist(centers[a], centers[y]))
                    .expect("finite distances")
            });
            for &b in others.iter().take(cfg.highways_per_city) {
                let key = (a.min(b), a.max(b));
                if linked.insert(key) {
                    build_highway(
                        cfg,
                        &cities,
                        &mut coords,
                        &mut regions,
                        &mut edges,
                        &mut next_vertex,
                        a,
                        b,
                        &mut rng,
                    );
                }
            }
        }

        let mut b = GraphBuilder::new(next_vertex as usize).with_edge_capacity(edges.len() * 2);
        for (s, t, w) in edges {
            b.add_undirected_edge(s, t, w);
        }
        b.set_props(VertexProps {
            coords,
            tags: Vec::new(),
            regions,
        });
        let graph = b.build();
        debug_assert!(qgraph_graph::validate(&graph).is_ok());
        RoadNetwork {
            graph,
            cities,
            config: self.config.clone(),
        }
    }
}

fn dist(a: (f32, f32), b: (f32, f32)) -> f32 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Travel-time edge between two placed vertices (hours scaled to minutes:
/// we use `km / (km/h) * 60` so weights are minutes).
fn push_road(edges: &mut Vec<(u32, u32, f32)>, coords: &[(f32, f32)], a: u32, b: u32, speed: f32) {
    let d = dist(coords[a as usize], coords[b as usize]).max(1e-4);
    edges.push((a, b, d / speed * 60.0));
}

/// Cities are placed on a jittered grid over the map so the layout is
/// spread out (like real regions) yet deterministic.
fn place_city_centers(cfg: &RoadNetworkConfig, rng: &mut SmallRng) -> Vec<(f32, f32)> {
    let grid = (cfg.num_cities as f32).sqrt().ceil() as usize;
    let cell = cfg.map_size_km / grid as f32;
    let mut cells: Vec<(usize, usize)> = (0..grid * grid).map(|i| (i % grid, i / grid)).collect();
    // Deterministic shuffle.
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    cells
        .into_iter()
        .take(cfg.num_cities)
        .map(|(cx, cy)| {
            (
                (cx as f32 + 0.25 + rng.gen::<f32>() * 0.5) * cell,
                (cy as f32 + 0.25 + rng.gen::<f32>() * 0.5) * cell,
            )
        })
        .collect()
}

/// Connect the two cities' closest grid vertices with a chain of highway
/// vertices (region label of the nearer endpoint).
#[allow(clippy::too_many_arguments)]
fn build_highway(
    cfg: &RoadNetworkConfig,
    cities: &[City],
    coords: &mut Vec<(f32, f32)>,
    regions: &mut Vec<RegionId>,
    edges: &mut Vec<(u32, u32, f32)>,
    next_vertex: &mut u32,
    a: usize,
    b: usize,
    rng: &mut SmallRng,
) {
    let pick_gateway = |c: &City, toward: (f32, f32), coords: &[(f32, f32)]| -> u32 {
        // The city vertex closest to the other city.
        c.vertices()
            .min_by(|&v, &u| {
                dist(coords[v.index()], toward)
                    .partial_cmp(&dist(coords[u.index()], toward))
                    .expect("finite")
            })
            .expect("city non-empty")
            .0
    };
    let ga = pick_gateway(&cities[a], cities[b].center, coords);
    let gb = pick_gateway(&cities[b], cities[a].center, coords);
    let pa = coords[ga as usize];
    let pb = coords[gb as usize];
    let d = dist(pa, pb);
    let segments = (d / cfg.highway_segment_km).ceil().max(1.0) as u32;

    let mut prev = ga;
    for s in 1..segments {
        let f = s as f32 / segments as f32;
        let jitter = (rng.gen::<f32>() - 0.5) * 0.2;
        let x = pa.0 + (pb.0 - pa.0) * f + jitter;
        let y = pa.1 + (pb.1 - pa.1) * f + jitter;
        let id = *next_vertex;
        *next_vertex += 1;
        coords.push((x, y));
        regions.push(if f < 0.5 {
            cities[a].region
        } else {
            cities[b].region
        });
        push_road(edges, coords, prev, id, cfg.highway_speed);
        prev = id;
    }
    push_road(edges, coords, prev, gb, cfg.highway_speed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::validate;

    fn small() -> RoadNetwork {
        RoadNetworkGenerator::new(RoadNetworkConfig {
            num_cities: 4,
            vertices_per_city: 100,
            seed: 1,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn generates_valid_graph() {
        let net = small();
        assert!(validate(&net.graph).is_ok());
        assert!(net.num_vertices() > 100);
        assert_eq!(net.cities.len(), 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let ea: Vec<_> = a.graph.edges().map(|(s, t, _)| (s.0, t.0)).collect();
        let eb: Vec<_> = b.graph.edges().map(|(s, t, _)| (s.0, t.0)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = RoadNetworkGenerator::new(RoadNetworkConfig {
            num_cities: 4,
            vertices_per_city: 100,
            seed: 2,
            ..Default::default()
        })
        .generate();
        let ca: Vec<_> = a.graph.props().coords.clone();
        let cb: Vec<_> = b.graph.props().coords.clone();
        assert_ne!(ca, cb);
    }

    #[test]
    fn populations_follow_zipf() {
        let net = small();
        let pops = net.population_weights();
        assert!(pops[0] > pops[1] && pops[1] > pops[2]);
        let s = net.config.zipf_exponent;
        assert!(
            (pops[0] / pops[1] - 2f64.powf(s)).abs() < 1e-9,
            "zipf ratio must be 2^s"
        );
    }

    #[test]
    fn city_sizes_scale_with_population() {
        let net = small();
        assert!(net.cities[0].count >= net.cities[3].count);
    }

    #[test]
    fn all_vertices_have_coords_and_regions() {
        let net = small();
        let n = net.graph.num_vertices();
        assert_eq!(net.graph.props().coords.len(), n);
        assert_eq!(net.graph.props().regions.len(), n);
    }

    #[test]
    fn graph_is_symmetric() {
        let net = small();
        let g = &net.graph;
        for (s, t, _) in g.edges().take(2000) {
            assert!(g.has_edge(t, s), "missing reverse edge {t:?}->{s:?}");
        }
    }

    #[test]
    fn cities_are_internally_connected() {
        // BFS within the largest city's vertex range must reach every vertex
        // of that city (street grids are connected by construction).
        let net = small();
        let g = &net.graph;
        let c = &net.cities[0];
        let mut seen = vec![false; g.num_vertices()];
        let mut stack = vec![VertexId(c.first_vertex)];
        seen[c.first_vertex as usize] = true;
        let in_city = |v: VertexId| v.0 >= c.first_vertex && v.0 < c.first_vertex + c.count;
        while let Some(v) = stack.pop() {
            for (t, _) in g.neighbors(v) {
                if in_city(t) && !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        let reached = c.vertices().filter(|v| seen[v.index()]).count();
        assert_eq!(reached, c.count as usize, "city grid disconnected");
    }

    #[test]
    fn presets_have_paper_city_counts() {
        assert_eq!(RoadNetworkConfig::bw_like(1.0, 0).num_cities, 16);
        assert_eq!(RoadNetworkConfig::gy_like(1.0, 0).num_cities, 64);
    }

    #[test]
    fn edge_weights_are_travel_times() {
        let net = small();
        for (_, _, w) in net.graph.edges().take(1000) {
            assert!(w > 0.0 && w.is_finite());
        }
    }
}
