//! Graph mutations: the unit of change of the evolving-graph plane.
//!
//! A [`MutationBatch`] is an ordered list of [`GraphMutation`] ops applied
//! atomically at an engine epoch barrier (see `qgraph-core`'s mutation
//! plane). Batches are plain data — generators build them against a known
//! graph state, engines apply them through [`crate::Topology::apply`].
//!
//! Edge weights are **validated**: NaN, negative, and infinite weights
//! would silently poison every shortest-path heap and hub label
//! downstream, so the builder methods reject them at construction (panic,
//! or a [`MutationError`] from the `try_` variants) and
//! [`crate::Topology::apply`] re-checks the whole batch up front —
//! *before* any op applies, preserving batch atomicity — to catch ops
//! assembled via [`MutationBatch::push`].

use std::fmt;

/// A rejected mutation: the batch (and the barrier it was bound for)
/// never applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MutationError {
    /// An [`GraphMutation::AddEdge`] or [`GraphMutation::SetWeight`]
    /// carries a weight outside `[0, ∞)` (NaN, negative, or infinite).
    InvalidWeight {
        /// Source vertex of the offending op.
        from: crate::VertexId,
        /// Target vertex of the offending op.
        to: crate::VertexId,
        /// The rejected weight.
        weight: f32,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MutationError::InvalidWeight { from, to, weight } => write!(
                f,
                "invalid edge weight {weight} on {from:?} -> {to:?}: \
                 weights must be finite and non-negative"
            ),
        }
    }
}

impl std::error::Error for MutationError {}

/// Is `w` usable as an edge weight? Shortest-path machinery assumes
/// finite, non-negative weights (zero is permitted: the index treats
/// zero-weight ties conservatively).
pub fn valid_weight(w: f32) -> bool {
    w.is_finite() && w >= 0.0
}

fn check_weight(from: u32, to: u32, weight: f32) -> Result<(), MutationError> {
    if valid_weight(weight) {
        Ok(())
    } else {
        Err(MutationError::InvalidWeight {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
            weight,
        })
    }
}

/// One topology change. Ops within a batch apply strictly in order, so a
/// later op may reference a vertex an earlier [`GraphMutation::AddVertex`]
/// created (ids are assigned densely from the current vertex count, in op
/// order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphMutation {
    /// Append one vertex; its id is the vertex count at the moment the op
    /// applies. New vertices carry default properties (untagged, no
    /// coordinates).
    AddVertex,
    /// Remove every edge incident to the vertex (in- and out-). The id
    /// itself stays valid — dense ids are never reused — so the vertex
    /// survives as an isolated node and may be reconnected later.
    RemoveVertex(crate::VertexId),
    /// Add a directed edge `from -> to` with weight `w`.
    AddEdge {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
        /// Edge weight (travel time in the road workloads).
        weight: f32,
    },
    /// Remove every live `from -> to` edge (parallel edges included).
    /// Removing a non-existent edge is a no-op.
    RemoveEdge {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
    },
    /// Set the weight of every live `from -> to` edge. A no-op when the
    /// edge does not exist.
    SetWeight {
        /// Source vertex.
        from: crate::VertexId,
        /// Target vertex.
        to: crate::VertexId,
        /// The new weight.
        weight: f32,
    },
}

/// An ordered group of mutations applied atomically at one epoch barrier:
/// queries never observe a half-applied batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    ops: Vec<GraphMutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[GraphMutation] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append a raw op.
    pub fn push(&mut self, op: GraphMutation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Append one new vertex (see [`GraphMutation::AddVertex`] for id
    /// assignment).
    pub fn add_vertex(&mut self) -> &mut Self {
        self.push(GraphMutation::AddVertex)
    }

    /// Disconnect `v` (see [`GraphMutation::RemoveVertex`]).
    pub fn remove_vertex(&mut self, v: u32) -> &mut Self {
        self.push(GraphMutation::RemoveVertex(crate::VertexId(v)))
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// On a NaN, negative, or infinite weight — use
    /// [`MutationBatch::try_add_edge`] to handle untrusted input.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: f32) -> &mut Self {
        self.try_add_edge(from, to, weight)
            .unwrap_or_else(|e| panic!("rejected mutation: {e}"))
    }

    /// Add a directed edge, rejecting NaN/negative/infinite weights.
    pub fn try_add_edge(
        &mut self,
        from: u32,
        to: u32,
        weight: f32,
    ) -> Result<&mut Self, MutationError> {
        check_weight(from, to, weight)?;
        Ok(self.push(GraphMutation::AddEdge {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
            weight,
        }))
    }

    /// Add both directions of a road segment.
    pub fn add_undirected_edge(&mut self, a: u32, b: u32, weight: f32) -> &mut Self {
        self.add_edge(a, b, weight).add_edge(b, a, weight)
    }

    /// Remove a directed edge.
    pub fn remove_edge(&mut self, from: u32, to: u32) -> &mut Self {
        self.push(GraphMutation::RemoveEdge {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
        })
    }

    /// Remove both directions of a road segment.
    pub fn remove_undirected_edge(&mut self, a: u32, b: u32) -> &mut Self {
        self.remove_edge(a, b).remove_edge(b, a)
    }

    /// Re-weight a directed edge.
    ///
    /// # Panics
    /// On a NaN, negative, or infinite weight — use
    /// [`MutationBatch::try_set_weight`] to handle untrusted input.
    pub fn set_weight(&mut self, from: u32, to: u32, weight: f32) -> &mut Self {
        self.try_set_weight(from, to, weight)
            .unwrap_or_else(|e| panic!("rejected mutation: {e}"))
    }

    /// Re-weight a directed edge, rejecting NaN/negative/infinite
    /// weights.
    pub fn try_set_weight(
        &mut self,
        from: u32,
        to: u32,
        weight: f32,
    ) -> Result<&mut Self, MutationError> {
        check_weight(from, to, weight)?;
        Ok(self.push(GraphMutation::SetWeight {
            from: crate::VertexId(from),
            to: crate::VertexId(to),
            weight,
        }))
    }

    /// Check every op's weight. [`crate::Topology::apply`] calls this up
    /// front — before any op applies — so a batch assembled through
    /// [`MutationBatch::push`] (bypassing the builder checks) still
    /// cannot poison the graph, and a rejected batch leaves the topology
    /// untouched.
    pub fn validate(&self) -> Result<(), MutationError> {
        for op in &self.ops {
            match *op {
                GraphMutation::AddEdge { from, to, weight }
                | GraphMutation::SetWeight { from, to, weight } => {
                    check_weight(from.0, to.0, weight)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn builder_collects_ops_in_order() {
        let mut b = MutationBatch::new();
        b.add_vertex().add_edge(0, 1, 2.0).remove_edge(1, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops()[0], GraphMutation::AddVertex);
        assert_eq!(
            b.ops()[2],
            GraphMutation::RemoveEdge {
                from: VertexId(1),
                to: VertexId(0)
            }
        );
    }

    #[test]
    fn try_builders_reject_unusable_weights() {
        let mut b = MutationBatch::new();
        for bad in [f32::NAN, -1.0, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(matches!(
                b.try_add_edge(0, 1, bad),
                Err(MutationError::InvalidWeight { .. })
            ));
            assert!(b.try_set_weight(0, 1, bad).is_err());
        }
        assert!(b.is_empty(), "rejected ops must not be recorded");
        // Zero and ordinary finite weights pass.
        b.try_add_edge(0, 1, 0.0).unwrap();
        b.try_set_weight(0, 1, 3.5).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "rejected mutation")]
    fn add_edge_panics_on_nan() {
        MutationBatch::new().add_edge(0, 1, f32::NAN);
    }

    #[test]
    #[should_panic(expected = "rejected mutation")]
    fn set_weight_panics_on_negative() {
        MutationBatch::new().set_weight(0, 1, -2.0);
    }

    #[test]
    fn validate_catches_raw_pushes() {
        let mut b = MutationBatch::new();
        b.push(GraphMutation::AddEdge {
            from: VertexId(0),
            to: VertexId(1),
            weight: f32::NAN,
        });
        assert!(b.validate().is_err());
        let err = b.validate().unwrap_err();
        assert!(err.to_string().contains("invalid edge weight"));
    }

    #[test]
    fn undirected_helpers_emit_both_directions() {
        let mut b = MutationBatch::new();
        b.add_undirected_edge(2, 3, 1.5);
        b.remove_undirected_edge(2, 3);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(MutationBatch::new().is_empty());
    }
}
