//! Query identity, typed handles, and lifecycle records.

use std::marker::PhantomData;

use qgraph_sim::SimTime;

use crate::program::VertexProgram;

/// Identifier of a query, dense per engine instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A typed receipt for a submitted query.
///
/// Internally the engines erase every program behind
/// [`QueryTask`](crate::task::QueryTask) envelopes; the handle is what
/// keeps the *public* API type-safe: it remembers the program type `P` in
/// a zero-sized marker, so [`Engine::output`](crate::Engine::output) can
/// hand back `&P::Output` without exposing `Any` to callers.
///
/// Handles are `Copy` and detached from the engine — holding one does not
/// borrow the engine, and a handle from one engine must not be used with
/// another (outputs are matched by [`QueryId`], so the result would be a
/// wrong-query lookup or a type-mismatch `None`).
pub struct QueryHandle<P: VertexProgram> {
    id: QueryId,
    _program: PhantomData<fn() -> P>,
}

impl<P: VertexProgram> QueryHandle<P> {
    pub(crate) fn new(id: QueryId) -> Self {
        QueryHandle {
            id,
            _program: PhantomData,
        }
    }

    /// The underlying query id.
    #[inline]
    pub fn id(&self) -> QueryId {
        self.id
    }
}

// Manual impls: `derive` would needlessly require `P: Clone/Copy/...`.
impl<P: VertexProgram> Clone for QueryHandle<P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: VertexProgram> Copy for QueryHandle<P> {}

impl<P: VertexProgram> std::fmt::Debug for QueryHandle<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QueryHandle<{}>({})",
            std::any::type_name::<P>(),
            self.id
        )
    }
}

impl<P: VertexProgram> PartialEq for QueryHandle<P> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<P: VertexProgram> Eq for QueryHandle<P> {}

/// How a submission left the system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutcomeStatus {
    /// Ran to completion; its output is available.
    #[default]
    Completed,
    /// Rejected at admission by the bounded waiting queue
    /// ([`crate::SystemConfig::max_queued`]); it never executed and its
    /// output stays `None`.
    Rejected,
}

/// Which serving path produced a completed query's output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServedBy {
    /// The BSP vertex-program traversal — the default path.
    #[default]
    Traversal,
    /// The installed label index answered at admission
    /// (see [`crate::index_plane::PointIndex`]); the query never reached
    /// a worker, so all its work counters are zero.
    Index,
}

/// Everything measured about one finished query.
///
/// `latency` follows the paper's definition: the difference between the
/// last and the first instant at which the query had an active vertex
/// (§2), here from submission to final barrier.
#[derive(Clone, Copy, Debug)]
pub struct QueryOutcome {
    /// The query.
    pub id: QueryId,
    /// Completed normally, or rejected at admission (backpressure).
    pub status: OutcomeStatus,
    /// The path that served it (traversal vs. label index) — reports
    /// separate index hits from traversal runs by this tag.
    pub served_by: ServedBy,
    /// The program-kind label (see
    /// [`VertexProgram::name`]) — keeps
    /// mixed-workload reports legible per query type.
    pub program: &'static str,
    /// When the query *arrived* at the engine (entered the waiting
    /// queue). `completed_at - queued_at` is its time in system;
    /// `submitted_at - queued_at` its queueing delay under the admission
    /// policy.
    pub queued_at: SimTime,
    /// Admission (virtual) time: when a closed-loop slot freed up and the
    /// query started executing.
    pub submitted_at: SimTime,
    /// Completion (virtual) time.
    pub completed_at: SimTime,
    /// Number of supersteps executed.
    pub iterations: u32,
    /// Supersteps that ran completely locally on one worker — the
    /// numerator of the paper's *query locality* metric.
    pub local_iterations: u32,
    /// Total vertex-function executions.
    pub vertex_updates: u64,
    /// Messages that crossed worker boundaries, *after* sender-side
    /// combining — what the wire carried and the cost models charged.
    pub remote_messages: u64,
    /// Boundary-crossing messages as produced by the vertex functions,
    /// *before* sender-side combining. `remote_messages ≤` this; the gap
    /// is the traffic the program's combiner
    /// ([`VertexProgram::combine`]) saved.
    pub remote_messages_pre_combine: u64,
    /// Wire batches the remote messages occupied under the paper's batch
    /// cap (`SystemConfig::batch_max_msgs`, 32): `Σ ⌈msgs/cap⌉` per
    /// (destination, superstep) send — the unit the network model's
    /// per-batch overhead is charged in.
    pub remote_batches: u64,
    /// Total vertices this query activated (its global scope |GS(q)|).
    pub scope_size: u64,
    /// Per-(query, partition) compute tasks the elastic pool executed
    /// for this query: `Σ` over supersteps of the involved-partition
    /// count. Zero for index-served and rejected submissions.
    pub tasks: u64,
    /// The query's *effective* degree of parallelism: the max over its
    /// supersteps of `min(DoP budget, involved partitions)` — what the
    /// admission policy's budget actually bought it. Zero when no
    /// superstep ran (index-served, rejected).
    pub effective_dop: u32,
    /// The graph epoch the query was admitted under (see the mutation
    /// plane: each applied `MutationBatch` bumps the engine's epoch).
    pub first_epoch: u64,
    /// The graph epoch the query completed under. Equal to `first_epoch`
    /// when no mutation barrier interleaved with the query's supersteps —
    /// only then is the result attributable to a single graph version.
    pub last_epoch: u64,
}

impl QueryOutcome {
    /// The outcome of a submission the bounded admission queue bounced
    /// at `at`: zero work, every lifecycle timestamp pinned to the
    /// arrival instant, no output — the one shape both runtimes record
    /// for backpressure rejections.
    pub fn rejected(id: QueryId, program: &'static str, at: SimTime, epoch: u64) -> Self {
        QueryOutcome {
            id,
            program,
            status: OutcomeStatus::Rejected,
            served_by: ServedBy::Traversal,
            queued_at: at,
            submitted_at: at,
            completed_at: at,
            iterations: 0,
            local_iterations: 0,
            vertex_updates: 0,
            remote_messages: 0,
            remote_messages_pre_combine: 0,
            remote_batches: 0,
            scope_size: 0,
            tasks: 0,
            effective_dop: 0,
            first_epoch: epoch,
            last_epoch: epoch,
        }
    }

    /// Was the submission rejected by the bounded admission queue?
    pub fn is_rejected(&self) -> bool {
        self.status == OutcomeStatus::Rejected
    }

    /// Was this query answered by the label index at admission (see
    /// [`crate::index_plane::PointIndex`])?
    pub fn is_index_served(&self) -> bool {
        self.served_by == ServedBy::Index
    }

    /// Did the query observe exactly one graph version? (Trivially true
    /// on a never-mutated engine.)
    pub fn single_epoch(&self) -> bool {
        self.first_epoch == self.last_epoch
    }
    /// Query latency in virtual seconds (admission to completion).
    pub fn latency_secs(&self) -> f64 {
        (self.completed_at.saturating_sub(self.submitted_at)).as_secs_f64()
    }

    /// Seconds spent waiting in the admission queue (arrival to admission)
    /// — the metric the [`crate::sched`] policies trade against each
    /// other.
    pub fn queueing_delay_secs(&self) -> f64 {
        (self.submitted_at.saturating_sub(self.queued_at)).as_secs_f64()
    }

    /// Seconds from arrival to completion: queueing delay plus execution
    /// latency — what a streaming client observes end to end.
    pub fn time_in_system_secs(&self) -> f64 {
        (self.completed_at.saturating_sub(self.queued_at)).as_secs_f64()
    }

    /// Fraction of iterations executed fully locally (1.0 for a query that
    /// never left one worker; also 1.0 for a zero-iteration query).
    pub fn locality(&self) -> f64 {
        if self.iterations == 0 {
            1.0
        } else {
            self.local_iterations as f64 / self.iterations as f64
        }
    }

    /// Remote messages the combiner eliminated before they reached the
    /// wire.
    pub fn messages_combined_away(&self) -> u64 {
        self.remote_messages_pre_combine
            .saturating_sub(self.remote_messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(iter: u32, local: u32) -> QueryOutcome {
        QueryOutcome {
            id: QueryId(0),
            program: "test",
            status: OutcomeStatus::Completed,
            served_by: ServedBy::Traversal,
            queued_at: SimTime::ZERO,
            submitted_at: SimTime::from_secs(1),
            completed_at: SimTime::from_secs(3),
            iterations: iter,
            local_iterations: local,
            vertex_updates: 10,
            remote_messages: 2,
            remote_messages_pre_combine: 3,
            remote_batches: 2,
            scope_size: 5,
            tasks: 6,
            effective_dop: 2,
            first_epoch: 0,
            last_epoch: 0,
        }
    }

    #[test]
    fn status_and_epoch_helpers() {
        let mut o = outcome(1, 1);
        assert!(!o.is_rejected());
        assert!(o.single_epoch());
        o.status = OutcomeStatus::Rejected;
        o.last_epoch = 3;
        assert!(o.is_rejected());
        assert!(!o.single_epoch());
    }

    #[test]
    fn combine_accounting_is_coherent() {
        let o = outcome(4, 2);
        assert_eq!(o.messages_combined_away(), 1);
        assert!(o.remote_messages <= o.remote_messages_pre_combine);
    }

    #[test]
    fn queueing_delay_and_time_in_system() {
        let o = outcome(4, 2);
        assert_eq!(o.queueing_delay_secs(), 1.0);
        assert_eq!(o.time_in_system_secs(), 3.0);
        assert_eq!(
            o.time_in_system_secs(),
            o.queueing_delay_secs() + o.latency_secs()
        );
    }

    #[test]
    fn latency_is_completion_minus_submission() {
        assert_eq!(outcome(4, 2).latency_secs(), 2.0);
    }

    #[test]
    fn locality_fraction() {
        assert_eq!(outcome(4, 2).locality(), 0.5);
        assert_eq!(outcome(0, 0).locality(), 1.0);
        assert_eq!(outcome(3, 3).locality(), 1.0);
    }

    #[test]
    fn handles_are_copyable_ids() {
        use crate::programs::ReachProgram;
        let h: QueryHandle<ReachProgram> = QueryHandle::new(QueryId(3));
        let h2 = h;
        assert_eq!(h, h2);
        assert_eq!(h.id(), QueryId(3));
        assert!(format!("{h:?}").contains("q3"));
    }
}
