//! The project rule set, data-driven: each rule is a scope (path
//! substrings), an allowlist (exempt path substrings), and a token
//! pattern. Adding a rule means adding one entry to [`RULES`] and a
//! seeded fixture under `fixtures/` (the test suite insists every rule
//! fires on its fixture and stays silent on the workspace).
//!
//! Findings can be waived in-source with a justification comment on
//! the same line or the line above:
//!
//! ```text
//! // qlint: allow(no-unwrap-hot-loop) — invariant: registry outlives workers
//! ```

/// One element of a token pattern.
#[derive(Debug, Clone, Copy)]
pub enum Pat {
    /// An identifier with exactly this name.
    Id(&'static str),
    /// A punctuation token.
    P(&'static str),
}

/// How a rule inspects the token stream.
#[derive(Debug, Clone, Copy)]
pub enum Check {
    /// Any of these token sequences is a finding.
    ForbidSeqs(&'static [&'static [Pat]]),
    /// An identifier from `idents` (or ending in one of `suffixes`)
    /// immediately adjacent to one of `ops` — optionally across a
    /// no-argument call `()` — is a finding. This is how "no naked
    /// float compare on distances" and "no epoch arithmetic" are
    /// expressed without type information.
    ForbidAdjacent {
        ops: &'static [&'static str],
        idents: &'static [&'static str],
        suffixes: &'static [&'static str],
    },
    /// The file must contain this token sequence (inverted rule: the
    /// finding is its absence). Scoped by `Rule::scope` like the rest.
    RequireSeq(&'static [Pat]),
}

/// A single lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub name: &'static str,
    pub summary: &'static str,
    /// Path substrings a file must match for the rule to apply.
    /// Empty ⇒ every scanned file.
    pub scope: &'static [&'static str],
    /// Path substrings that waive the rule (the per-rule allowlist).
    pub exempt: &'static [&'static str],
    pub check: Check,
}

macro_rules! base_call {
    ($m:literal) => {
        &[
            Pat::Id("base"),
            Pat::P("("),
            Pat::P(")"),
            Pat::P("."),
            Pat::Id($m),
            Pat::P("("),
        ]
    };
}

/// Adjacency-method names of the raw CSR surface. Everything outside
/// `crates/graph` must traverse through `Topology` so overlay edges
/// (mutation deltas) are visible; sneaking past it via
/// `topology.base()` reads the stale base snapshot.
const BASE_LEAK: &[&[Pat]] = &[
    &[Pat::P("&"), Pat::Id("Graph")],
    &[Pat::P("&"), Pat::Id("mut"), Pat::Id("Graph")],
    base_call!("neighbors"),
    base_call!("out_edges"),
    base_call!("edge_target"),
    base_call!("edge_weight"),
    base_call!("degree"),
    base_call!("edges"),
    base_call!("vertices"),
    base_call!("has_edge"),
];

/// The workspace rule set.
pub const RULES: &[Rule] = &[
    Rule {
        name: "raw-adjacency",
        summary: "raw Graph/CSR adjacency access outside crates/graph; go through Topology",
        scope: &["crates/core/src", "crates/index/src", "crates/algo/src"],
        // The reference oracles intentionally run on materialized CSR
        // snapshots — they are the thing Topology answers are checked
        // against.
        exempt: &["crates/algo/src/reference.rs"],
        check: Check::ForbidSeqs(BASE_LEAK),
    },
    Rule {
        name: "thread-discipline",
        summary: "std::thread outside the engine runtime / pool / index morsel scopes",
        scope: &[],
        // pool.rs owns the elastic compute-thread pool (the only place
        // worker compute threads are born); runtime.rs owns the single
        // coordinator thread; repair.rs owns the scoped morsel pools
        // for index build/recount work; the trace crate owns the
        // recorder rings that pool/coordinator threads stamp into (its
        // tests exercise cross-thread recording).
        exempt: &[
            "crates/core/src/pool.rs",
            "crates/core/src/runtime.rs",
            "crates/index/src/repair.rs",
            "crates/trace/src",
        ],
        check: Check::ForbidSeqs(&[
            &[Pat::Id("thread"), Pat::P("::"), Pat::Id("spawn")],
            &[Pat::Id("thread"), Pat::P("::"), Pat::Id("scope")],
            &[Pat::Id("thread"), Pat::P("::"), Pat::Id("Builder")],
        ]),
    },
    Rule {
        name: "index-float-cmp",
        summary: "naked f32 comparison on distances in crates/index; use the dist helpers",
        scope: &["crates/index/src"],
        // dist.rs *is* the tolerance-helper module.
        exempt: &["crates/index/src/dist.rs"],
        check: Check::ForbidAdjacent {
            ops: &["==", "!=", "<", "<=", ">", ">="],
            idents: &[
                "d",
                "du",
                "dv",
                "dw",
                "dh",
                "dx",
                "dr",
                "nd",
                "cand",
                "best",
                "dist",
                "sum",
                "threshold",
            ],
            suffixes: &["_dist"],
        },
    },
    Rule {
        name: "no-unwrap-hot-loop",
        summary: "unwrap()/expect() in coordinator/worker loop bodies",
        scope: &[
            "crates/core/src/runtime.rs",
            "crates/core/src/engine.rs",
            "crates/core/src/worker.rs",
        ],
        exempt: &[],
        check: Check::ForbidSeqs(&[
            &[Pat::P("."), Pat::Id("unwrap"), Pat::P("(")],
            &[Pat::P("."), Pat::Id("expect"), Pat::P("(")],
        ]),
    },
    Rule {
        name: "time-epoch-arith",
        summary: "direct SimTime/epoch arithmetic outside the attribution helpers",
        scope: &[],
        // topology.rs owns the epoch counter; the two engine event
        // loops and the sim crate own virtual-time scheduling math;
        // query.rs/report.rs own latency/epoch attribution; the trace
        // crate owns stamp arithmetic by design (phase folding is
        // subtraction over admitted/finished stamps).
        exempt: &[
            "crates/graph/src/topology.rs",
            "crates/core/src/engine.rs",
            "crates/core/src/runtime.rs",
            "crates/core/src/report.rs",
            "crates/core/src/query.rs",
            "crates/sim/src",
            "crates/trace/src",
        ],
        check: Check::ForbidAdjacent {
            ops: &["+", "-", "+=", "-=", "*", "/"],
            idents: &[
                "epoch",
                "first_epoch",
                "last_epoch",
                "SimTime",
                "queued_at",
                "submitted_at",
                "completed_at",
            ],
            suffixes: &[],
        },
    },
    Rule {
        name: "forbid-unsafe",
        summary: "crate root missing #![forbid(unsafe_code)]",
        scope: &["src/lib.rs", "/src/bin/", "src/main.rs"],
        exempt: &[],
        check: Check::RequireSeq(&[
            Pat::P("#"),
            Pat::P("!"),
            Pat::P("["),
            Pat::Id("forbid"),
            Pat::P("("),
            Pat::Id("unsafe_code"),
            Pat::P(")"),
            Pat::P("]"),
        ]),
    },
];
