//! Distance-comparison helpers — the index's "tolerance helpers".
//!
//! Every f32 comparison on label distances routes through this module
//! (qlint's `index-float-cmp` rule enforces it). Centralizing them
//! pins down the crate's floating-point contract in one place:
//!
//! - Relaxation and pruning use **exact** comparisons (`<`, `<=`,
//!   `==`): every path length is the same left-to-right sum of edge
//!   weights no matter which pass computed it, so equal paths compare
//!   equal bit-for-bit and the usual epsilon smearing would only
//!   *create* disagreement between build, repair, and the engine
//!   drivers (which must produce identical labels entry-for-entry).
//! - The one place genuinely different float *expressions* are
//!   compared — the chain-head support probe, where a 2-hop query sum
//!   `d(r,a) + w + d(b,v)` stands in for a stored single-sum entry —
//!   uses a relative slack ([`within_slack`]), erring toward a
//!   spurious full re-run and never a missed one.

/// Relative tolerance for comparisons between differently-associated
/// sums (see [`within_slack`]).
pub(crate) const REL_SLACK: f32 = 1e-4;

/// `cand` strictly improves on the held distance `cur`.
#[inline]
pub(crate) fn improves(cand: f32, cur: f32) -> bool {
    cand < cur
}

/// A cover at distance `held` dominates a candidate entry at `d`:
/// committing the candidate would be redundant (ties prune — the
/// higher-ranked hub wins them, keeping labels minimal).
#[inline]
pub(crate) fn covers(held: f32, d: f32) -> bool {
    held <= d
}

/// The candidate `nd` is strictly looser than `d` (a replacement entry
/// that failed to restore the old distance).
#[inline]
pub(crate) fn looser(nd: f32, d: f32) -> bool {
    nd > d
}

/// Exact distance equality. Sound here because both sides are built
/// from the same left-to-right edge-weight sums (see module docs).
#[inline]
pub(crate) fn same(a: f32, b: f32) -> bool {
    a == b
}

/// The edge `(u, v, w)` is a *tight strict* parent relation for entries
/// `du` at `u` and `dv` at `v`: `du < dv` and `du + w == dv`. This is
/// the witness predicate of the shortest-path DAG.
#[inline]
pub(crate) fn tight_via(du: f32, w: f32, dv: f32) -> bool {
    du < dv && du + w == dv
}

/// `sum` reaches `d` up to the relative slack. Used where the two
/// sides are *differently associated* sums (a 2-hop probe vs a stored
/// entry), so exact equality would under-report support.
#[inline]
pub(crate) fn within_slack(sum: f32, d: f32) -> bool {
    sum.is_finite() && sum <= d * (1.0 + REL_SLACK)
}
