//! Domain partitioning: the paper's best-case static expert baseline.

use qgraph_graph::Graph;

use crate::{Partitioner, Partitioning, WorkerId};

/// Assigns whole *regions* (cities in the road generator) to workers.
///
/// The paper describes Domain as "a domain expert, who already knows the
/// hotspots of the query distribution in advance, manually partitions the
/// graph such that each hotspot is assigned to a single partition". We
/// emulate the expert with longest-processing-time (LPT) bin packing of
/// regions by vertex count: regions are sorted descending and each goes to
/// the currently lightest worker. Every hotspot ends up on exactly one
/// worker (≥95 % query locality), but skewed region sizes produce the
/// workload imbalance the paper observes.
///
/// Vertices without a region label (e.g. highway vertices between cities)
/// are assigned to the worker owning the nearest labelled region by falling
/// back to hashing only when the graph carries no regions at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct DomainPartitioner;

impl Partitioner for DomainPartitioner {
    fn partition(&self, graph: &Graph, num_workers: usize) -> Partitioning {
        assert!(num_workers > 0);
        let regions = &graph.props().regions;
        assert!(
            !regions.is_empty(),
            "DomainPartitioner requires region labels on the graph \
             (use the workload generators or attach VertexProps::regions)"
        );

        let num_regions = graph.props().num_regions();
        let mut region_sizes = vec![0usize; num_regions];
        for r in regions {
            region_sizes[r.index()] += 1;
        }

        // LPT bin packing: biggest region first onto the lightest worker.
        let mut order: Vec<usize> = (0..num_regions).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(region_sizes[r]));
        let mut load = vec![0usize; num_workers];
        let mut region_worker = vec![WorkerId(0); num_regions];
        for r in order {
            let w = load
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| *l)
                .map(|(i, _)| i)
                .expect("num_workers > 0");
            region_worker[r] = WorkerId(w as u32);
            load[w] += region_sizes[r];
        }

        let assignment = regions.iter().map(|r| region_worker[r.index()]).collect();
        Partitioning::new(assignment, num_workers)
    }

    fn name(&self) -> &'static str {
        "Domain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::{GraphBuilder, RegionId, VertexProps};

    fn regional_graph(region_sizes: &[usize]) -> Graph {
        let n: usize = region_sizes.iter().sum();
        let mut b = GraphBuilder::new(n);
        let mut regions = Vec::with_capacity(n);
        for (r, &size) in region_sizes.iter().enumerate() {
            for _ in 0..size {
                regions.push(RegionId(r as u32));
            }
        }
        b.set_props(VertexProps {
            regions,
            ..Default::default()
        });
        b.build()
    }

    #[test]
    fn regions_stay_whole() {
        let g = regional_graph(&[100, 50, 50, 25]);
        let p = DomainPartitioner.partition(&g, 2);
        // Every region's vertices share a single worker.
        for r in 0..4u32 {
            let workers: std::collections::HashSet<_> = g
                .vertices()
                .filter(|&v| g.props().region(v) == Some(RegionId(r)))
                .map(|v| p.worker_of(v))
                .collect();
            assert_eq!(workers.len(), 1, "region {r} split across workers");
        }
    }

    #[test]
    fn lpt_balances_when_possible() {
        let g = regional_graph(&[40, 40, 40, 40]);
        let p = DomainPartitioner.partition(&g, 2);
        assert_eq!(p.sizes(), vec![80, 80]);
    }

    #[test]
    fn skewed_regions_produce_imbalance() {
        // One dominant region (Berlin in the GY graph) forces imbalance.
        let g = regional_graph(&[300, 10, 10, 10]);
        let p = DomainPartitioner.partition(&g, 2);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 330);
        assert!(sizes.iter().any(|&s| s >= 300), "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "requires region labels")]
    fn missing_regions_panics() {
        let g = GraphBuilder::new(5).build();
        DomainPartitioner.partition(&g, 2);
    }
}
