//! Application 2 (paper §1): personalized social-network analysis — many
//! overlapping "social circle" queries on a shared small-world graph, here
//! as k-hop neighbourhoods plus localized PageRank (the paper's
//! future-work algorithm), executed on the *real multi-threaded runtime*.
//!
//! ```text
//! cargo run --release -p qgraph-examples --bin social_circles
//! ```

use std::sync::Arc;

use qgraph_algo::{BfsProgram, PprProgram};
use qgraph_core::runtime::ThreadEngine;
use qgraph_graph::VertexId;
use qgraph_partition::{DomainPartitioner, Partitioner};
use qgraph_workload::{generate_ws, WattsStrogatzConfig};

fn main() {
    // A small-world network: high clustering => overlapping circles.
    let graph = Arc::new(generate_ws(WattsStrogatzConfig {
        n: 20_000,
        k: 10,
        beta: 0.05,
        region_size: 1_000,
        seed: 7,
    }));
    println!(
        "social graph: {} users, {} ties",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    let parts = DomainPartitioner.partition(&graph, 4);

    // 2-hop social circles for a set of users, on real threads.
    let engine: ThreadEngine<BfsProgram> = ThreadEngine::new(Arc::clone(&graph), parts.clone());
    let users: Vec<u32> = (0..12).map(|i| i * 1_500 + 37).collect();
    let circles = engine.run(
        users
            .iter()
            .map(|&u| BfsProgram::new(VertexId(u), 2))
            .collect(),
    );
    for (u, c) in users.iter().zip(&circles) {
        println!(
            "  user {u}: {} people within 2 hops ({} supersteps)",
            c.output.len(),
            c.iterations
        );
    }

    // Localized PageRank around the first user: influence inside a circle.
    let ppr: ThreadEngine<PprProgram> = ThreadEngine::new(Arc::clone(&graph), parts);
    let result = ppr.run(vec![PprProgram::new(VertexId(users[0]), 0.15, 1e-5)]);
    let top = &result[0].output;
    println!(
        "localized PageRank around user {}: touched {} vertices; top-3 {:?}",
        users[0],
        top.len(),
        top.iter().take(3).map(|(v, p)| (v.0, *p)).collect::<Vec<_>>()
    );
}
