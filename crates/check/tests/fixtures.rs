//! The two promises the lint pass makes, as tests:
//!
//! * **sensitivity** — every rule in [`qgraph_check::rules::RULES`]
//!   fires on its seeded fixture under `fixtures/` when linted at an
//!   in-scope virtual path;
//! * **specificity** — the real workspace lints clean. This is the
//!   tier-1 zero-findings gate: a change that trips a rule fails here,
//!   in `cargo test`, not just in the standalone `qlint` binary.

use qgraph_check::{find_workspace_root, lint_source, lint_workspace, rules};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint `fixture_name` as if it lived at `virtual_path` and assert the
/// named rule (and only deliberate rules) fires.
fn assert_fires(rule: &str, virtual_path: &str, fixture_name: &str) {
    let findings = lint_source(virtual_path, &fixture(fixture_name));
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "expected `{rule}` to fire on fixtures/{fixture_name} at {virtual_path}; got {findings:?}"
    );
}

#[test]
fn raw_adjacency_fires_on_fixture() {
    // Both shapes: a `.base().neighbors(..)` escape and an `&Graph`
    // parameter smuggled into engine code.
    let findings = lint_source("crates/core/src/fixture.rs", &fixture("raw_adjacency.rs"));
    let hits = findings
        .iter()
        .filter(|f| f.rule == "raw-adjacency")
        .count();
    assert!(
        hits >= 2,
        "expected both seeded leaks to fire; got {findings:?}"
    );
}

#[test]
fn raw_adjacency_is_scoped() {
    // The same source outside the traversal crates is none of the
    // rule's business.
    let findings = lint_source("crates/sim/src/fixture.rs", &fixture("raw_adjacency.rs"));
    assert!(
        !findings.iter().any(|f| f.rule == "raw-adjacency"),
        "raw-adjacency fired out of scope: {findings:?}"
    );
}

#[test]
fn thread_discipline_fires_on_fixture() {
    assert_fires(
        "thread-discipline",
        "crates/workload/src/fixture.rs",
        "thread_discipline.rs",
    );
}

#[test]
fn thread_discipline_exempts_the_runtime() {
    let findings = lint_source(
        "crates/core/src/runtime.rs",
        &fixture("thread_discipline.rs"),
    );
    assert!(
        !findings.iter().any(|f| f.rule == "thread-discipline"),
        "the coordinator runtime owns thread::spawn: {findings:?}"
    );
}

#[test]
fn thread_discipline_exempts_the_pool() {
    let findings = lint_source("crates/core/src/pool.rs", &fixture("thread_discipline.rs"));
    assert!(
        !findings.iter().any(|f| f.rule == "thread-discipline"),
        "the elastic pool owns compute-thread spawning: {findings:?}"
    );
}

#[test]
fn thread_discipline_pool_exemption_is_file_precise() {
    // The sanction covers pool.rs, not the rest of the core crate: a
    // spawn smuggled into a sibling module must still be a finding.
    assert_fires(
        "thread-discipline",
        "crates/core/src/sched.rs",
        "thread_discipline.rs",
    );
}

#[test]
fn thread_discipline_exempts_the_trace_crate() {
    // The recorder's tests spawn threads to exercise cross-thread
    // recording; the crate is sanctioned.
    let findings = lint_source("crates/trace/src/lib.rs", &fixture("thread_discipline.rs"));
    assert!(
        !findings.iter().any(|f| f.rule == "thread-discipline"),
        "the trace crate owns its recorder-thread tests: {findings:?}"
    );
}

#[test]
fn thread_discipline_trace_exemption_is_dir_precise() {
    // The sanction covers crates/trace/src, not trace-adjacent code
    // elsewhere (a bench binary must not inherit it).
    assert_fires(
        "thread-discipline",
        "crates/bench/src/bin/trace_smoke.rs",
        "thread_discipline.rs",
    );
}

#[test]
fn index_float_cmp_fires_on_fixture() {
    assert_fires(
        "index-float-cmp",
        "crates/index/src/fixture.rs",
        "index_float_cmp.rs",
    );
}

#[test]
fn no_unwrap_hot_loop_fires_on_fixture() {
    assert_fires(
        "no-unwrap-hot-loop",
        "crates/core/src/runtime.rs",
        "no_unwrap_hot_loop.rs",
    );
}

#[test]
fn time_epoch_arith_fires_on_fixture() {
    assert_fires(
        "time-epoch-arith",
        "crates/index/src/fixture.rs",
        "time_epoch_arith.rs",
    );
}

#[test]
fn time_epoch_arith_exempts_the_trace_crate() {
    // Phase folding *is* stamp subtraction; the trace crate owns that
    // arithmetic the same way the sim crate owns virtual-time math.
    let findings = lint_source(
        "crates/trace/src/summary.rs",
        &fixture("time_epoch_arith.rs"),
    );
    assert!(
        !findings.iter().any(|f| f.rule == "time-epoch-arith"),
        "the trace crate owns stamp arithmetic: {findings:?}"
    );
}

#[test]
fn time_epoch_arith_trace_exemption_is_dir_precise() {
    // Outside crates/trace/src the rule still polices stamp math —
    // consumers must go through the attribution helpers.
    assert_fires(
        "time-epoch-arith",
        "crates/bench/src/bin/trace_smoke.rs",
        "time_epoch_arith.rs",
    );
}

#[test]
fn forbid_unsafe_fires_on_fixture() {
    assert_fires(
        "forbid-unsafe",
        "crates/demo/src/lib.rs",
        "forbid_unsafe.rs",
    );
}

#[test]
fn an_allow_comment_waives_a_finding() {
    let src = "fn f(d: f32, best: f32) -> bool {\n    \
               // qlint: allow(index-float-cmp) — fixture: exact tie intended\n    \
               d < best\n}\n";
    let findings = lint_source("crates/index/src/fixture.rs", src);
    assert!(findings.is_empty(), "waiver ignored: {findings:?}");
}

#[test]
fn every_rule_has_a_fixture_test() {
    // Adding a rule without wiring a fixture is the failure mode this
    // guards: the count here must move in lockstep with RULES.
    assert_eq!(
        rules::RULES.len(),
        6,
        "rule added or removed — update the fixture suite to match"
    );
    // The thread-discipline sanction list is deliberate and small; a
    // new exemption needs a fixture test like the pool's above.
    let td = rules::RULES
        .iter()
        .find(|r| r.name == "thread-discipline")
        .expect("thread-discipline rule present");
    assert_eq!(
        td.exempt.len(),
        4,
        "thread-discipline exemption added — wire a fixture test"
    );
}

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/check lives inside the workspace");
    let findings = lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "workspace must lint clean; qlint found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
