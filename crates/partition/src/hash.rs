//! Hash partitioning: the paper's balanced-but-locality-blind baseline.

use qgraph_graph::Graph;

use crate::{Partitioner, Partitioning, WorkerId};

/// Assigns each vertex by a multiplicative hash of its id, modulo the worker
/// count. Deterministic given the same `seed`; spreads any query's scope
/// uniformly over all workers — the worst case for locality and the best
/// for balance, exactly the trade-off the paper's Figures 6e/6f show.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    seed: u64,
}

impl Default for HashPartitioner {
    fn default() -> Self {
        HashPartitioner {
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl HashPartitioner {
    /// A hash partitioner with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        HashPartitioner { seed }
    }

    #[inline]
    fn hash(&self, v: u32) -> u64 {
        // SplitMix64 finalizer — cheap, well-mixed, stable across platforms.
        let mut z = (v as u64).wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &Graph, num_workers: usize) -> Partitioning {
        assert!(num_workers > 0);
        let assignment = (0..graph.num_vertices() as u32)
            .map(|v| WorkerId((self.hash(v) % num_workers as u64) as u32))
            .collect();
        Partitioning::new(assignment, num_workers)
    }

    fn name(&self) -> &'static str {
        "Hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph_graph::GraphBuilder;

    fn graph(n: usize) -> Graph {
        GraphBuilder::new(n).build()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = graph(1000);
        let a = HashPartitioner::with_seed(7).partition(&g, 4);
        let b = HashPartitioner::with_seed(7).partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_assignment() {
        let g = graph(1000);
        let a = HashPartitioner::with_seed(1).partition(&g, 4);
        let b = HashPartitioner::with_seed(2).partition(&g, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn roughly_balanced() {
        let g = graph(10_000);
        let p = HashPartitioner::default().partition(&g, 8);
        let sizes = p.sizes();
        let expected = 10_000 / 8;
        for s in sizes {
            // Within 15% of perfect for a uniform hash at this size.
            assert!((s as f64 - expected as f64).abs() < expected as f64 * 0.15);
        }
    }

    #[test]
    fn covers_all_workers() {
        let g = graph(1000);
        let p = HashPartitioner::default().partition(&g, 8);
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s > 0));
    }
}
