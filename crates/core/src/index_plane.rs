//! The engine-side face of the index plane.
//!
//! Point queries — `dist(u,v)` / `reach(u,v)` — do not need a BSP
//! traversal when a precomputed 2-hop label index is available (Quegel's
//! Hub2 serving mode; see `qgraph-index` for the construction). This
//! module defines the *vocabulary* the engines speak to such an index:
//!
//! * [`PointQuery`] / [`PointAnswer`] — the eligible query shapes and
//!   their answers, declared by programs via
//!   [`VertexProgram::point_query`](crate::VertexProgram::point_query);
//! * [`PointIndex`] — the object-safe trait an index implements to serve
//!   point queries at admission and to repair itself at mutation
//!   barriers;
//! * [`IndexRepairEvent`] — the per-batch repair record surfaced through
//!   [`EngineReport`](crate::EngineReport).
//!
//! The dependency points one way: `qgraph-core` knows only this trait,
//! `qgraph-index` implements it. The engines hold an installed index as
//! `Option<Box<dyn PointIndex>>` and consult it in the admission path
//! (see [`crate::sched::try_index_path`]); a query admitted at graph
//! epoch *e* is index-served only when the index reports
//! [`repaired_through`](PointIndex::repaired_through)` >= e`, so a stale
//! index silently degrades to traversal instead of serving wrong answers.

use qgraph_graph::{AppliedMutation, Topology, VertexId};

/// A query answerable by label intersection instead of traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointQuery {
    /// Shortest-path distance from `source` to `target`.
    Dist {
        /// Start vertex.
        source: VertexId,
        /// End vertex.
        target: VertexId,
    },
    /// Is `target` reachable from `source`?
    Reach {
        /// Start vertex.
        source: VertexId,
        /// End vertex.
        target: VertexId,
    },
}

impl PointQuery {
    /// The query's source vertex.
    pub fn source(&self) -> VertexId {
        match *self {
            PointQuery::Dist { source, .. } | PointQuery::Reach { source, .. } => source,
        }
    }

    /// The query's target vertex.
    pub fn target(&self) -> VertexId {
        match *self {
            PointQuery::Dist { target, .. } | PointQuery::Reach { target, .. } => target,
        }
    }
}

/// The answer an index returns for a [`PointQuery`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PointAnswer {
    /// Distance (`None` = unreachable), matching [`PointQuery::Dist`].
    Dist(Option<f32>),
    /// Reachability flag, matching [`PointQuery::Reach`].
    Reach(bool),
}

/// What one repair pass did — returned by [`PointIndex::repair`] and
/// recorded as an [`IndexRepairEvent`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepairSummary {
    /// Landmark roots whose passes were re-run (or resumed) in full.
    pub roots_rerun: usize,
    /// Root passes repaired by a seeded partial resume over the
    /// witness-invalidated region only (the cheap deletion path).
    pub partial_roots: usize,
    /// Witness-count decrements applied (direct hits plus cascade).
    pub witness_decrements: usize,
    /// Label entries invalidated because their witness count hit zero.
    pub entries_invalidated: usize,
    /// Label entries invalidated by the batch.
    pub labels_removed: usize,
    /// Label entries (re)committed by the repair.
    pub labels_added: usize,
    /// Did the damage threshold trip a full scoped rebuild?
    pub rebuilt: bool,
}

/// The object-safe index contract the engines hold. Implemented by
/// `qgraph-index`'s `LabelIndex`; `core` itself ships no implementation.
pub trait PointIndex: Send {
    /// Answer `q` from the labels, or `None` when the index cannot
    /// (vertex out of range, unknown shape) — the engine then falls back
    /// to the traversal path. A `Some` answer must be *identical* to
    /// what the program's traversal would produce.
    fn serve(&self, q: &PointQuery) -> Option<PointAnswer>;

    /// The graph epoch the labels are valid through. The engines only
    /// index-serve queries admitted at epochs `<= repaired_through()`.
    fn repaired_through(&self) -> u64;

    /// Absorb one applied mutation batch: invalidate damaged labels,
    /// re-run affected landmark passes against `topology` (already the
    /// post-batch graph), and advance
    /// [`repaired_through`](PointIndex::repaired_through) to `epoch`.
    fn repair(
        &mut self,
        topology: &Topology,
        applied: &AppliedMutation,
        epoch: u64,
    ) -> RepairSummary;

    /// Hint how many worker threads the index may use for its own
    /// offline work (full rebuilds at mutation barriers, witness
    /// recounts). `0` = pick automatically. The engines forward
    /// [`SystemConfig::index_build_threads`](crate::SystemConfig) here
    /// at [`install_index`](crate::Engine::install_index) time; indexes
    /// without internal parallelism ignore it.
    fn set_parallelism(&mut self, _threads: usize) {}
}

/// One index-repair record: a mutation batch absorbed by the installed
/// index at a stop-the-world barrier. Rides
/// [`EngineReport::index_repairs`](crate::EngineReport::index_repairs),
/// parallel to the mutation plane's
/// [`MutationEvent`](crate::MutationEvent)s.
#[derive(Clone, Copy, Debug)]
pub struct IndexRepairEvent {
    /// When the batch (and repair) applied (virtual seconds).
    pub applied_at: f64,
    /// The graph epoch the repair brought the index up to.
    pub epoch: u64,
    /// What the repair did.
    pub summary: RepairSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_query_accessors() {
        let d = PointQuery::Dist {
            source: VertexId(1),
            target: VertexId(2),
        };
        let r = PointQuery::Reach {
            source: VertexId(3),
            target: VertexId(4),
        };
        assert_eq!(d.source(), VertexId(1));
        assert_eq!(d.target(), VertexId(2));
        assert_eq!(r.source(), VertexId(3));
        assert_eq!(r.target(), VertexId(4));
    }

    #[test]
    fn answers_compare_by_value() {
        assert_eq!(PointAnswer::Dist(Some(1.5)), PointAnswer::Dist(Some(1.5)));
        assert_ne!(PointAnswer::Dist(None), PointAnswer::Dist(Some(0.0)));
        assert_ne!(PointAnswer::Reach(true), PointAnswer::Reach(false));
    }
}
