//! Cross-runtime conformance: the *same* mixed workload (SSSP + POI +
//! Reach + BFS) must match the sequential references in
//! `qgraph_algo::reference` on `SimEngine` and `ThreadEngine`, with Q-cut
//! enabled and disabled — four configurations. Adaptive repartitioning is
//! an optimization of *where* state lives; it must never change an
//! answer.

use std::sync::Arc;

use qgraph_algo::{
    connected_component_of, dijkstra_to, k_hop, nearest_tagged, BfsProgram, PoiProgram, SsspProgram,
};
use qgraph_core::programs::ReachProgram;
use qgraph_core::{Engine, EngineBuilder, QcutConfig, QueryHandle, SystemConfig};
use qgraph_graph::{Graph, VertexId};
use qgraph_integration_tests::small_road_world;
use qgraph_partition::{HashPartitioner, Partitioner};
use qgraph_workload::assign_tags;

/// The mixed batch: sources are clustered in one region so live scopes
/// overlap — the workload shape Q-cut exists for.
struct MixedHandles {
    sssp: Vec<QueryHandle<SsspProgram>>,
    poi: Vec<QueryHandle<PoiProgram>>,
    reach: QueryHandle<ReachProgram>,
    bfs: QueryHandle<BfsProgram>,
}

fn tagged_world() -> (Arc<Graph>, Vec<VertexId>) {
    let mut world = small_road_world(57);
    assign_tags(&mut world.graph, 1.0 / 60.0, 5);
    let n = world.graph.num_vertices() as u32;
    // A hotspot band in the first quarter of the id space: overlapping
    // sources keep the scopes intersecting across queries.
    let sources: Vec<VertexId> = (0..12u32).map(|i| VertexId((i * 29) % (n / 4))).collect();
    (Arc::new(world.graph), sources)
}

fn submit_mixed<E: Engine>(engine: &mut E, sources: &[VertexId]) -> MixedHandles {
    let mut sssp = Vec::new();
    let mut poi = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let t = sources[(i + 5) % sources.len()];
        sssp.push(engine.submit(SsspProgram::new(s, t)));
        if i % 3 == 0 {
            poi.push(engine.submit(PoiProgram::new(s)));
        }
    }
    let reach = engine.submit(ReachProgram::new(sources[0]));
    let bfs = engine.submit(BfsProgram::new(sources[1], 3));
    MixedHandles {
        sssp,
        poi,
        reach,
        bfs,
    }
}

fn verify_mixed<E: Engine>(engine: &E, graph: &Graph, sources: &[VertexId], h: &MixedHandles) {
    for (i, (&s, hs)) in sources.iter().zip(&h.sssp).enumerate() {
        let t = sources[(i + 5) % sources.len()];
        let want = dijkstra_to(graph, s, t);
        let got = *engine.output(hs).expect("sssp finished");
        match (want, got) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-3, "sssp {i}: {a} vs {b}"),
            (None, None) => {}
            other => panic!("sssp {i}: {other:?}"),
        }
    }
    for (i, hp) in h.poi.iter().enumerate() {
        let s = sources[i * 3];
        let want = nearest_tagged(graph, s);
        let got = *engine.output(hp).expect("poi finished");
        match (want, got) {
            (Some((_, wd)), Some((_, gd))) => {
                assert!((wd - gd).abs() < 1e-3, "poi {i}: {wd} vs {gd}");
            }
            (None, None) => {}
            other => panic!("poi {i}: {other:?}"),
        }
    }
    let mut want_reach = connected_component_of(graph, sources[0]);
    want_reach.sort_unstable();
    assert_eq!(
        engine.output(&h.reach).expect("reach finished"),
        &want_reach,
        "reach disagrees with reference"
    );
    let mut want_bfs = k_hop(graph, sources[1], 3);
    want_bfs.sort_unstable();
    let mut got_bfs = engine.output(&h.bfs).expect("bfs finished").clone();
    got_bfs.sort_unstable();
    assert_eq!(got_bfs, want_bfs, "bfs disagrees with reference");
}

/// Q-cut configuration for the simulated engine (virtual-time trigger).
fn sim_qcut() -> SystemConfig {
    SystemConfig {
        qcut: Some(QcutConfig::time_scaled(2000.0)),
        ..Default::default()
    }
}

/// Q-cut configuration for the thread runtime (superstep-cadence trigger).
fn thread_qcut() -> SystemConfig {
    SystemConfig {
        qcut: Some(QcutConfig {
            qcut_interval: 6,
            ..Default::default()
        }),
        ..Default::default()
    }
}

#[test]
fn sim_static_matches_references() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(4)
        .partitioner(HashPartitioner::default())
        .build_sim();
    let h = submit_mixed(&mut e, &sources);
    e.run();
    verify_mixed(&e, &graph, &sources, &h);
    assert!(e.report().repartitions.is_empty());
}

#[test]
fn sim_qcut_matches_references() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(4)
        .partitioner(HashPartitioner::default())
        .config(sim_qcut())
        .build_sim();
    let h = submit_mixed(&mut e, &sources);
    e.run();
    verify_mixed(&e, &graph, &sources, &h);
}

#[test]
fn thread_static_matches_references() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(4)
        .partitioner(HashPartitioner::default())
        .build_threaded();
    let h = submit_mixed(&mut e, &sources);
    e.run();
    verify_mixed(&e, &graph, &sources, &h);
    assert!(e.report().repartitions.is_empty());
}

#[test]
fn thread_qcut_matches_references_and_repartitions() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(4)
        .partitioner(HashPartitioner::default())
        .config(thread_qcut())
        .build_threaded();
    let h = submit_mixed(&mut e, &sources);
    e.run();
    verify_mixed(&e, &graph, &sources, &h);

    let report = e.report();
    assert!(
        !report.repartitions.is_empty(),
        "hash partitioning + hotspot mix must trigger at least one repartition"
    );
    for r in &report.repartitions {
        assert!(r.moved_vertices > 0);
        assert!(r.ils.final_cost <= r.ils.initial_cost + 1e-9);
        assert!((0.0..=1.0).contains(&r.locality_before));
        assert!((0.0..=1.0).contains(&r.locality_after));
    }
    // The assignment drifted but still covers the graph exactly.
    assert_eq!(
        e.partitioning().sizes().iter().sum::<usize>(),
        graph.num_vertices()
    );
}

/// Output-lifecycle conformance, simulated engine: `take_output` moves
/// the result out exactly once; every later access through any path sees
/// `None`; a second `take_output` is `None`, not a panic.
#[test]
fn sim_output_lifecycle_take_then_gone() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(2)
        .build_sim();
    let q = e.submit(ReachProgram::new(sources[0]));
    e.run();
    assert!(e.output(&q).is_some(), "finished query has an output");
    let owned = e.take_output(&q).expect("first take succeeds");
    assert!(!owned.is_empty());
    assert!(e.output(&q).is_none(), "output after take is None");
    assert!(e.take_output(&q).is_none(), "second take is None");
    assert!(
        Engine::output_envelope(&e, q.id()).is_none(),
        "erased access agrees"
    );
}

/// Output-lifecycle conformance, thread runtime: identical pinned
/// behavior to the simulated engine.
#[test]
fn thread_output_lifecycle_take_then_gone() {
    let (graph, sources) = tagged_world();
    let mut e = EngineBuilder::new(Arc::clone(&graph))
        .workers(2)
        .build_threaded();
    let q = e.submit(ReachProgram::new(sources[0]));
    e.run();
    assert!(e.output(&q).is_some(), "finished query has an output");
    let owned = e.take_output(&q).expect("first take succeeds");
    assert!(!owned.is_empty());
    assert!(e.output(&q).is_none(), "output after take is None");
    assert!(e.take_output(&q).is_none(), "second take is None");
    assert!(
        Engine::output_envelope(&e, q.id()).is_none(),
        "erased access agrees"
    );
}

/// Dropping a `QueryHandle` before completion is harmless on both
/// runtimes: handles are detached receipts, the query still runs to
/// completion, its outcome is reported, and the output stays reachable by
/// raw id through the typed lookup.
#[test]
fn dropped_handle_before_completion_is_harmless_on_both_runtimes() {
    let (graph, sources) = tagged_world();

    let mut sim = EngineBuilder::new(Arc::clone(&graph))
        .workers(2)
        .build_sim();
    let kept = sim.submit(BfsProgram::new(sources[0], 2));
    let dropped_id = {
        let h = sim.submit(ReachProgram::new(sources[1]));
        h.id()
    }; // handle dropped here, query still queued
    sim.run();
    assert!(sim.output(&kept).is_some());
    assert_eq!(sim.report().outcomes.len(), 2, "dropped handle still ran");
    assert!(
        sim.output_as::<ReachProgram>(dropped_id).is_some(),
        "output reachable by raw id"
    );

    let mut thr = EngineBuilder::new(Arc::clone(&graph))
        .workers(2)
        .build_threaded();
    let kept = thr.submit(BfsProgram::new(sources[0], 2));
    let dropped_id = {
        let h = thr.submit(ReachProgram::new(sources[1]));
        h.id()
    };
    thr.run();
    assert!(thr.output(&kept).is_some());
    assert_eq!(thr.report().outcomes.len(), 2, "dropped handle still ran");
    assert!(
        thr.output_as::<ReachProgram>(dropped_id).is_some(),
        "output reachable by raw id"
    );
}

/// The acceptance comparison: the adaptive thread runtime on a repeating
/// hotspot must end with locality no worse than the static-partition run
/// of the same workload, and each migration must not lower the live
/// scopes' partition-level locality.
#[test]
fn thread_qcut_locality_no_worse_than_static() {
    let (graph, _) = tagged_world();
    // Eight distinct source→target pairs inside the hotspot, each
    // repeated four times: scopes overlap heavily, so gathering them is
    // pure win for Q-cut.
    let pairs: Vec<(VertexId, VertexId)> = (0..32u32)
        .map(|i| (VertexId(i % 8), VertexId(300 + (i % 8))))
        .collect();

    let run = |cfg: SystemConfig| {
        let parts = HashPartitioner::default().partition(&graph, 4);
        let mut e = EngineBuilder::new(Arc::clone(&graph))
            .partitioning(parts)
            .config(cfg)
            .build_threaded();
        let handles: Vec<_> = pairs
            .iter()
            .map(|&(s, t)| e.submit(SsspProgram::new(s, t)))
            .collect();
        e.run();
        for (i, (h, &(s, t))) in handles.iter().zip(&pairs).enumerate() {
            let want = dijkstra_to(&graph, s, t);
            let got = *e.output(h).expect("finished");
            match (want, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-3, "query {i}: {a} vs {b}"),
                (None, None) => {}
                other => panic!("query {i}: {other:?}"),
            }
        }
        (e.report().mean_locality(), e.report().repartitions.clone())
    };

    let (static_locality, static_events) = run(SystemConfig::default());
    let (adaptive_locality, events) = run(thread_qcut());

    assert!(static_events.is_empty());
    assert!(!events.is_empty(), "the hotspot must trigger Q-cut");
    for r in &events {
        assert!((0.0..=1.0).contains(&r.locality_before));
        assert!((0.0..=1.0).contains(&r.locality_after));
        assert!(r.ils.final_cost <= r.ils.initial_cost + 1e-9);
    }
    // At least one migration must have raised the partition-level scope
    // locality (per-event monotonicity is not guaranteed — a move can
    // serve a retained overlapping scope at a live scope's expense — but
    // a gathering run over a repeating hotspot must show improvement).
    assert!(
        events
            .iter()
            .any(|r| r.locality_after > r.locality_before + 1e-9),
        "no migration improved scope locality: {:?}",
        events
            .iter()
            .map(|r| (r.locality_before, r.locality_after))
            .collect::<Vec<_>>()
    );
    // Thread scheduling decides exactly which checkpoints repartition, so
    // the behavioural mean is noisy run to run; the tolerance absorbs that
    // noise without weakening the acceptance claim (observed adaptive
    // locality is consistently a multiple of the near-zero static value).
    assert!(
        adaptive_locality >= static_locality - 0.02,
        "adaptive locality {adaptive_locality:.3} worse than static {static_locality:.3}"
    );
}
