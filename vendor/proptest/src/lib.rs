//! Vendored mini property-testing harness: the `proptest` API subset this
//! workspace uses (`proptest!`, `prop_assert*`, range/tuple/`Just`/
//! `prop::collection::vec` strategies, `prop_flat_map`, `ProptestConfig`).
//! This build environment has no network access to crates.io, so the
//! workspace vendors a deterministic stand-in: cases are generated from a
//! seed derived from the test name, there is **no shrinking**, and a
//! failing case panics with the standard assertion message.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (`proptest::test_runner::Config` stand-in).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier engine
        // properties fast while still exploring a meaningful space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64-seeded xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// An RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ case.wrapping_mul(0x100_0000_01b3);
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        let mut st = seed;
        let mut next = || {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (`proptest::strategy::Strategy` stand-in; no
/// shrinking, so `Value` is produced directly).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Feed each generated value into `f` and use the strategy it returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Map each generated value through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
int_strategy!(u32, u64, usize, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection` stand-in).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// `prop::collection::vec(...)` etc.
    pub use crate as prop;
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::deterministic(stringify!($name), __case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property-test name (panics; there is no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn pair() -> impl Strategy<Value = (u32, Vec<u32>)> {
        (1u32..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..n, 0..8)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, xs) in pair()) {
            for x in xs {
                prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        let s = prop::collection::vec(0u64..100, 5..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
