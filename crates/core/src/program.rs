//! The vertex-centric programming model (paper §2).
//!
//! Each query is a pair `(f, V_sub)` of a vertex function and an initial
//! active vertex set. The vertex function iteratively recomputes
//! query-specific vertex data from incoming messages, under bulk
//! synchronous processing. We extend the paper's minimal model with
//! Pregel-style *aggregators*, which the paper's SSSP/POI queries need for
//! bounded search (prune expansion beyond the best known answer).

use qgraph_graph::{Topology, VertexId};

use crate::index_plane::{PointAnswer, PointQuery};

/// A vertex program: the `f` in the paper's query tuple `(f, V_sub)`.
///
/// Implementations must be deterministic functions of their inputs — the
/// engine's replay guarantees and the repartitioning correctness tests
/// rely on it.
pub trait VertexProgram: Send + Sync + 'static {
    /// Query-specific per-vertex data `D_v`. Created on first activation
    /// via [`VertexProgram::init_state`]; stored sparsely because localized
    /// queries touch a small fraction of the graph.
    type State: Clone + Send + 'static;
    /// Message exchanged along edges.
    type Message: Clone + Send + std::fmt::Debug + 'static;
    /// Global aggregate combined across workers at every query barrier and
    /// broadcast into the next superstep. Use `()` if unused.
    type Aggregate: Clone + Send + PartialEq + std::fmt::Debug + 'static;
    /// The query's final answer, extracted from the touched states.
    type Output: Send + 'static;

    /// A short program-kind label, used to tag [`crate::QueryOutcome`]s so
    /// mixed-workload reports stay legible per query type. Defaults to the
    /// type name; override with something terse ("sssp", "poi", ...).
    fn name(&self) -> &'static str {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full)
    }

    /// The state a vertex holds before its first message arrives.
    fn init_state(&self) -> Self::State;

    /// The aggregator's identity element.
    fn aggregate_identity(&self) -> Self::Aggregate;

    /// Fold `b` into `a`. Must be commutative and associative.
    fn aggregate_combine(&self, a: &mut Self::Aggregate, b: &Self::Aggregate);

    /// Whether the aggregate is *sticky*: combined across the whole query
    /// run rather than reset each superstep. Bounds (SSSP's best target
    /// distance, POI's best tagged distance) are sticky; per-superstep
    /// quantities (e.g. a residual sum used for convergence detection) are
    /// not.
    fn aggregate_sticky(&self) -> bool {
        false
    }

    /// Combine `other` into `acc`, both addressed to the *same* vertex,
    /// and return `true`; or return `false` (leaving `acc` untouched) to
    /// keep the messages separate. The default declines: the program has
    /// no combiner and every message is delivered individually.
    ///
    /// A combiner must satisfy
    /// `compute(state, [a, b, rest…]) == compute(state, [combine(a,b), rest…])`
    /// for every message pair — in practice the same commutative,
    /// associative, *exactly representable* fold `compute` already applies
    /// (min for SSSP/BFS distances, OR for reachability flags). Exact
    /// folds keep results bit-identical with combining on or off, which
    /// is what the engine-wide equivalence property tests pin. A fold
    /// that is only *approximately* associative (a floating-point sum)
    /// may still opt in when it carries compensation in the message
    /// (Kahan/Neumaier partial sums, see `qgraph_algo`'s PPR residuals)
    /// and ships with a tolerance-based equivalence test instead of the
    /// bit-identical one; otherwise it should decline.
    ///
    /// The engines apply combiners at both ends of the wire: sender-side
    /// when a superstep's remote messages are bucketed per destination
    /// worker, and receiver-side when the pending inbox is coalesced at
    /// the superstep freeze — N relaxations addressed to one vertex
    /// collapse to 1 before they are priced, shipped, or applied.
    fn combine(&self, _acc: &mut Self::Message, _other: &Self::Message) -> bool {
        false
    }

    /// Messages that seed the query (sent to the paper's `V_sub`); for SSSP
    /// this is a zero-distance message to the start vertex.
    fn initial_messages(&self, graph: &Topology) -> Vec<(VertexId, Self::Message)>;

    /// The vertex function: fold `messages` into `state` and send new
    /// messages via `ctx`. Runs once per active vertex per superstep.
    fn compute(
        &self,
        graph: &Topology,
        vertex: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        ctx: &mut Context<'_, Self::Message, Self::Aggregate>,
    );

    /// Inspect the combined aggregate at a barrier; return `true` to
    /// terminate the query even if active vertices remain.
    fn should_terminate(&self, _aggregate: &Self::Aggregate) -> bool {
        false
    }

    /// Extract the query's answer from all states it touched.
    fn finalize(
        &self,
        graph: &Topology,
        states: &mut dyn Iterator<Item = (VertexId, Self::State)>,
    ) -> Self::Output;

    /// If this program is an index-eligible *point query* — a
    /// fixed-source, fixed-target distance or reachability question — its
    /// [`PointQuery`] form; `None` (the default) keeps the program on the
    /// traversal path unconditionally. A program returning `Some` here
    /// must also implement [`VertexProgram::output_from_answer`] so the
    /// index's answer can be surfaced through the program's typed output.
    fn point_query(&self) -> Option<PointQuery> {
        None
    }

    /// Convert an index's [`PointAnswer`] into this program's
    /// [`Output`](VertexProgram::Output). Returning `None` (the default)
    /// declines the answer and the query runs as a traversal after all —
    /// the safe fallback for mismatched answer shapes.
    fn output_from_answer(&self, _answer: &PointAnswer) -> Option<Self::Output> {
        None
    }
}

/// Per-vertex execution context handed to [`VertexProgram::compute`].
///
/// Collects outgoing messages and aggregate contributions; exposes the
/// previous superstep's combined aggregate.
pub struct Context<'a, M, A> {
    pub(crate) outgoing: &'a mut Vec<(VertexId, M)>,
    pub(crate) aggregate: &'a mut A,
    pub(crate) prev_aggregate: &'a A,
    pub(crate) combine: &'a dyn Fn(&mut A, &A),
}

impl<M, A> Context<'_, M, A> {
    /// Send `msg` to vertex `to`, activating it next superstep.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outgoing.push((to, msg));
    }

    /// Contribute `value` to this superstep's aggregate.
    #[inline]
    pub fn aggregate(&mut self, value: &A) {
        (self.combine)(self.aggregate, value);
    }

    /// The combined aggregate of the *previous* superstep (the identity in
    /// superstep 0).
    #[inline]
    pub fn prev_aggregate(&self) -> &A {
        self.prev_aggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_messages_and_aggregates() {
        let mut out: Vec<(VertexId, u32)> = Vec::new();
        let mut agg = 0u64;
        let prev = 7u64;
        let combine = |a: &mut u64, b: &u64| *a += *b;
        let mut ctx = Context {
            outgoing: &mut out,
            aggregate: &mut agg,
            prev_aggregate: &prev,
            combine: &combine,
        };
        assert_eq!(*ctx.prev_aggregate(), 7);
        ctx.send(VertexId(3), 10);
        ctx.send(VertexId(4), 11);
        ctx.aggregate(&5);
        ctx.aggregate(&6);
        assert_eq!(out, vec![(VertexId(3), 10), (VertexId(4), 11)]);
        assert_eq!(agg, 11);
    }
}
