//! Minimal vendored FxHash: the multiply-rotate hash used by rustc,
//! drop-in for the `rustc-hash` crate (this build environment has no
//! network access to crates.io, so the workspace vendors the tiny subset
//! of the external API surface it actually uses).
//!
//! The algorithm matches rustc's FxHasher word loop applied bytewise:
//! `hash = (hash.rotate_left(5) ^ byte) * K` with the usual odd constant.
//! It is *not* cryptographic and, like the original, is only meant for
//! in-memory hash maps keyed by small integers and tuples.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (64-bit golden-ratio-derived odd constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_hashing_is_deterministic() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));

        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn bytewise_tail_is_covered() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one full word + 3-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
