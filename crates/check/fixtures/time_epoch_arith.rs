//! Seeded violation for the `time-epoch-arith` rule: raw epoch
//! arithmetic outside the attribution helpers. Epochs are identities
//! published by `Topology`, not counters — `epoch + 1` silently
//! assumes batches never coalesce.

fn next_epoch_guess(epoch: u64) -> u64 {
    epoch + 1
}
