//! Synthetic graph and query workload generation.
//!
//! The paper evaluates on OpenStreetMap exports of Germany (GY, 11.8 M
//! vertices) and Baden-Württemberg (BW, 1.8 M vertices) with hotspot query
//! workloads around the biggest cities. Those data sets are not available
//! here, so this crate generates the closest synthetic equivalent (see
//! `DESIGN.md` §2): parametric road networks whose properties drive every
//! effect in the paper — population-weighted urban hotspots, low-degree
//! spatial topology, travel-time edge weights, and POI tags.
//!
//! It also provides small-world and preferential-attachment social graphs
//! for the paper's Application 2 (personalized social-network analysis),
//! and the hotspot query workload generator (SSSP / POI query streams in
//! batches, with the disturbance phase used in Figure 5).

#![forbid(unsafe_code)]

mod arrivals;
mod churn;
mod points;
mod queries;
mod road;
mod social;
mod tags;

pub use arrivals::{arrival_times, schedule_open_loop, ArrivalConfig, ArrivalPattern, TimedQuery};
pub use churn::{edge_churn, road_closures, social_follows, ChurnConfig, TimedMutation};
pub use points::{
    generate_point_queries, schedule_point_queries, PairSkew, PointQuerySpec, PointWorkloadConfig,
    TimedPointQuery,
};
pub use queries::{QueryKind, QuerySpec, WorkloadConfig, WorkloadGenerator, WorkloadPhase};
pub use road::{City, RoadNetwork, RoadNetworkConfig, RoadNetworkGenerator};
pub use social::{generate_ba, generate_ws, BarabasiAlbertConfig, WattsStrogatzConfig};
pub use tags::assign_tags;
