//! Failure/perturbation injection: the system must stay *correct* under a
//! straggling worker (inflated compute costs), an overloaded network, or a
//! degenerate cluster layout — only latency may suffer.

use std::sync::Arc;

use qgraph_algo::{dijkstra_to, SsspProgram};
use qgraph_core::{SimEngine, SystemConfig};
use qgraph_integration_tests::small_road_world;
use qgraph_partition::{HashPartitioner, Partitioner};
use qgraph_sim::{ClusterModel, ComputeModel, NetworkModel};
use qgraph_workload::{QueryKind, WorkloadConfig, WorkloadGenerator};

fn run_with_cluster(cluster: ClusterModel, seed: u64) -> (Vec<Option<f32>>, Vec<Option<f32>>, f64) {
    let world = small_road_world(seed);
    let graph = Arc::new(world.graph.clone());
    let k = cluster.num_workers;
    let parts = HashPartitioner::default().partition(&graph, k);
    let mut engine = SimEngine::new(Arc::clone(&graph), cluster, parts, SystemConfig::default());
    let gen = WorkloadGenerator::new(&world);
    let specs = gen.generate(&WorkloadConfig::single(16, false, false, seed));
    let mut expected = Vec::new();
    let mut handles = Vec::new();
    for s in &specs {
        if let QueryKind::Sssp { source, target } = s.kind {
            handles.push(engine.submit(SsspProgram::new(source, target)));
            expected.push(dijkstra_to(&graph, source, target));
        }
    }
    let report = engine.run();
    let total = report.total_latency();
    let got = handles.iter().map(|h| *engine.output(h).unwrap()).collect();
    (got, expected, total)
}

fn assert_answers(got: &[Option<f32>], want: &[Option<f32>]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-3, "query {i}: {a} vs {b}"),
            (None, None) => {}
            other => panic!("query {i}: {other:?}"),
        }
    }
}

#[test]
fn slow_compute_worker_only_slows_the_system() {
    let baseline = ClusterModel::scale_up(4);
    let (got_b, want_b, total_b) = run_with_cluster(baseline, 31);
    assert_answers(&got_b, &want_b);

    // A 20x slower compute model everywhere (worst-case uniform straggler).
    let mut slow = ClusterModel::scale_up(4);
    slow.compute = ComputeModel {
        vertex_update_ns: slow.compute.vertex_update_ns * 20,
        message_apply_ns: slow.compute.message_apply_ns * 20,
        superstep_overhead_ns: slow.compute.superstep_overhead_ns * 20,
        ..slow.compute
    };
    let (got_s, want_s, total_s) = run_with_cluster(slow, 31);
    assert_answers(&got_s, &want_s);
    assert!(total_s > total_b, "straggling compute must cost latency");
}

#[test]
fn congested_network_only_slows_the_system() {
    let (got_b, want_b, total_b) = run_with_cluster(ClusterModel::scale_up(4), 37);
    assert_answers(&got_b, &want_b);

    let mut congested = ClusterModel::scale_up(4);
    congested.network = NetworkModel {
        remote_latency_ns: congested.network.remote_latency_ns * 50,
        loopback_latency_ns: congested.network.loopback_latency_ns * 50,
        remote_bandwidth_bps: congested.network.remote_bandwidth_bps / 100,
        loopback_bandwidth_bps: congested.network.loopback_bandwidth_bps / 100,
        ..congested.network
    };
    let (got_c, want_c, total_c) = run_with_cluster(congested, 37);
    assert_answers(&got_c, &want_c);
    assert!(total_c > total_b, "congestion must cost latency");
}

#[test]
fn single_worker_cluster_is_a_valid_degenerate_case() {
    let (got, want, _) = run_with_cluster(ClusterModel::scale_up(1), 41);
    assert_answers(&got, &want);
}

#[test]
fn scale_out_cluster_matches_scale_up_answers() {
    let (got_up, want, _) = run_with_cluster(ClusterModel::scale_up(4), 43);
    let (got_out, _, _) = run_with_cluster(ClusterModel::c1(4), 43);
    assert_answers(&got_up, &want);
    assert_eq!(got_up, got_out, "topology must not change answers");
}
