//! The type-erased query-task layer.
//!
//! The engines run *heterogeneous* concurrent queries — one engine
//! instance executes SSSP, POI, and reachability programs side by side —
//! so the runtimes cannot be generic over a single
//! [`VertexProgram`]. Instead, every submitted program is wrapped in a
//! [`TypedTask`] and handled through the object-safe [`QueryTask`] trait:
//!
//! * program-specific payloads (message batches, aggregates, vertex-state
//!   envelopes, outputs) cross the erased boundary as
//!   `Box<dyn Any + Send>` **envelopes** ([`Envelope`], [`MessageBatch`]);
//! * the *only* code that downcasts is the per-query runner inside
//!   [`TypedTask`], so a mismatched envelope is a library bug, caught by a
//!   panic with a clear message, never a caller-visible `Any` API;
//! * callers get their types back through [`QueryHandle`](crate::QueryHandle),
//!   which carries the program type in a zero-sized marker and downcasts
//!   the output envelope exactly once, in
//!   [`Engine::output`](crate::Engine::output).
//!
//! The counts a runtime needs for cost accounting (how many messages a
//! batch carries) ride alongside the envelope in [`MessageBatch`], so the
//! simulation's network model never has to peek inside an erased payload.

use std::any::Any;
use std::sync::Arc;

use rustc_hash::{FxHashMap, FxHashSet};

use qgraph_graph::{Topology, VertexId};

use crate::program::VertexProgram;
use crate::worker::{CombineScratch, LocalState, QueryLocal, SuperstepStats};

/// A type-erased, sendable payload (messages, aggregate, states, output).
pub type Envelope = Box<dyn Any + Send>;

/// A batch of one query's messages addressed to one worker. The payload is
/// a `Vec<(VertexId, P::Message)>` behind an [`Envelope`]; the message
/// counts are carried openly for the runtimes' cost models: `count` is
/// what the batch actually holds (post sender-side combining — what the
/// wire carries and the network model prices), `pre_combine` what the
/// producing superstep addressed to this worker before the combiner ran.
pub struct MessageBatch {
    count: usize,
    pre_combine: usize,
    payload: Envelope,
}

impl MessageBatch {
    /// Number of messages in the batch (post-combine).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Messages addressed to this batch's worker before sender-side
    /// combining; `len() ≤ pre_combine()`, equal when the program has no
    /// combiner (or combining is disabled).
    pub fn pre_combine(&self) -> usize {
        self.pre_combine
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The object-safe face of one submitted query: its program plus every
/// typed operation a runtime needs, erased behind envelopes. Runtimes hold
/// `Arc<dyn QueryTask>` per query and stay completely program-agnostic.
pub trait QueryTask: Send + Sync {
    /// The program-kind label (see [`VertexProgram::name`]).
    fn program_name(&self) -> &'static str;

    /// The program's index-eligible point-query form, if any (see
    /// [`VertexProgram::point_query`]).
    fn point_query(&self) -> Option<crate::index_plane::PointQuery>;

    /// Wrap an index answer as this task's typed output envelope, or
    /// `None` when the program declines it (see
    /// [`VertexProgram::output_from_answer`]) — the query then runs as a
    /// traversal.
    fn envelope_from_answer(&self, answer: &crate::index_plane::PointAnswer) -> Option<Envelope>;

    /// Fresh per-worker local state for this query; `combiners` gates the
    /// program's message combiner (see [`VertexProgram::combine`]).
    fn new_local(&self, combiners: bool) -> Box<dyn LocalState>;

    /// The aggregator's identity element, enveloped.
    fn aggregate_identity(&self) -> Envelope;

    /// Fold `b` into `acc` (both must be this task's aggregate type).
    fn aggregate_combine(&self, acc: &mut Envelope, b: &Envelope);

    /// Clone an aggregate envelope (the thread runtime broadcasts the
    /// previous aggregate to every involved worker).
    fn clone_aggregate(&self, a: &Envelope) -> Envelope;

    /// Whether the aggregate accumulates across the whole run.
    fn aggregate_sticky(&self) -> bool;

    /// Should the query stop at this barrier?
    fn should_terminate(&self, aggregate: &Envelope) -> bool;

    /// The seed messages, pre-bucketed by destination worker via `route`
    /// and combined per destination vertex when `combiners` is set.
    fn initial_batches(
        &self,
        graph: &Topology,
        route: &dyn Fn(VertexId) -> usize,
        combiners: bool,
    ) -> Vec<(usize, MessageBatch)>;

    /// Deliver a batch into `local`'s next-superstep inbox.
    fn deliver(&self, local: &mut dyn LocalState, batch: MessageBatch);

    /// Split `batch` into chunks of at most `max` messages, preserving
    /// message order (the thread runtime ships each chunk as its own
    /// `Deliver` envelope — the paper's wire batch cap applied
    /// physically, not just in the accounting). The pre-combine count is
    /// conserved: each chunk carries its own length and the first chunk
    /// absorbs the combiner's savings, so summing `pre_combine()` over
    /// the chunks equals the original batch's.
    fn split_batch(&self, batch: MessageBatch, max: usize) -> Vec<MessageBatch>;

    /// Execute `local`'s frozen superstep; returns the step statistics,
    /// the superstep's aggregate contribution, and remote message batches
    /// bucketed by destination worker (combined sender-side through
    /// `scratch` when the program carries a combiner).
    fn execute(
        &self,
        local: &mut dyn LocalState,
        graph: &Topology,
        prev_aggregate: &Envelope,
        home: usize,
        route: &dyn Fn(VertexId) -> usize,
        scratch: &mut CombineScratch,
    ) -> (SuperstepStats, Envelope, Vec<(usize, MessageBatch)>);

    /// Extract this query's data for the given vertices out of `local`
    /// (migration), or `None` if the query holds nothing there.
    fn extract(
        &self,
        local: &mut dyn LocalState,
        vertices: &FxHashSet<VertexId>,
    ) -> Option<Envelope>;

    /// Inject a migration envelope produced by [`QueryTask::extract`].
    fn inject(&self, local: &mut dyn LocalState, data: Envelope);

    /// Merge the locals collected from every worker and produce the
    /// query's output envelope (downcast by [`crate::QueryHandle`]).
    fn finalize(&self, graph: &Topology, locals: Vec<Box<dyn LocalState>>) -> Envelope;
}

/// The typed implementation of [`QueryTask`] for a program `P` — the
/// per-query runner where every downcast in the system lives.
pub(crate) struct TypedTask<P: VertexProgram> {
    program: Arc<P>,
}

impl<P: VertexProgram> TypedTask<P> {
    pub(crate) fn new(program: P) -> Self {
        TypedTask {
            program: Arc::new(program),
        }
    }

    fn local_mut<'a>(&self, local: &'a mut dyn LocalState) -> &'a mut QueryLocal<P> {
        let any: &mut dyn Any = local;
        any.downcast_mut::<QueryLocal<P>>()
            .expect("query task type mismatch: local state is not this program's")
    }

    fn messages(&self, batch: MessageBatch) -> Vec<(VertexId, P::Message)> {
        *batch
            .payload
            .downcast::<Vec<(VertexId, P::Message)>>()
            .expect("query task type mismatch: message batch is not this program's")
    }

    fn aggregate<'a>(&self, envelope: &'a Envelope) -> &'a P::Aggregate {
        envelope
            .downcast_ref::<P::Aggregate>()
            .expect("query task type mismatch: aggregate envelope is not this program's")
    }

    fn wrap_batch(&self, pre_combine: usize, msgs: Vec<(VertexId, P::Message)>) -> MessageBatch {
        MessageBatch {
            count: msgs.len(),
            pre_combine,
            payload: Box::new(msgs),
        }
    }

    /// Sort a bucket by destination vertex and collapse each vertex's run
    /// through the program's combiner (sender-side combining).
    fn combine_bucket(&self, msgs: &mut Vec<(VertexId, P::Message)>) {
        crate::worker::combine_in_place(self.program.as_ref(), msgs);
    }

    #[cfg(test)]
    pub(crate) fn batch_for_test(&self, msgs: Vec<(VertexId, P::Message)>) -> MessageBatch {
        let pre = msgs.len();
        self.wrap_batch(pre, msgs)
    }
}

impl<P: VertexProgram> QueryTask for TypedTask<P> {
    fn program_name(&self) -> &'static str {
        self.program.name()
    }

    fn point_query(&self) -> Option<crate::index_plane::PointQuery> {
        self.program.point_query()
    }

    fn envelope_from_answer(&self, answer: &crate::index_plane::PointAnswer) -> Option<Envelope> {
        self.program
            .output_from_answer(answer)
            .map(|out| Box::new(out) as Envelope)
    }

    fn new_local(&self, combiners: bool) -> Box<dyn LocalState> {
        Box::new(QueryLocal::<P>::new(Arc::clone(&self.program), combiners))
    }

    fn aggregate_identity(&self) -> Envelope {
        Box::new(self.program.aggregate_identity())
    }

    fn aggregate_combine(&self, acc: &mut Envelope, b: &Envelope) {
        let b = self.aggregate(b).clone();
        let acc = acc
            .downcast_mut::<P::Aggregate>()
            .expect("query task type mismatch: aggregate envelope is not this program's");
        self.program.aggregate_combine(acc, &b);
    }

    fn clone_aggregate(&self, a: &Envelope) -> Envelope {
        Box::new(self.aggregate(a).clone())
    }

    fn aggregate_sticky(&self) -> bool {
        self.program.aggregate_sticky()
    }

    fn should_terminate(&self, aggregate: &Envelope) -> bool {
        self.program.should_terminate(self.aggregate(aggregate))
    }

    fn initial_batches(
        &self,
        graph: &Topology,
        route: &dyn Fn(VertexId) -> usize,
        combiners: bool,
    ) -> Vec<(usize, MessageBatch)> {
        let mut by_worker: FxHashMap<usize, Vec<(VertexId, P::Message)>> = FxHashMap::default();
        for (v, m) in self.program.initial_messages(graph) {
            by_worker.entry(route(v)).or_default().push((v, m));
        }
        let mut out: Vec<(usize, MessageBatch)> = by_worker
            .into_iter()
            .map(|(w, mut msgs)| {
                let pre = msgs.len();
                if combiners {
                    self.combine_bucket(&mut msgs);
                }
                (w, self.wrap_batch(pre, msgs))
            })
            .collect();
        out.sort_unstable_by_key(|(w, _)| *w); // deterministic order
        out
    }

    fn deliver(&self, local: &mut dyn LocalState, batch: MessageBatch) {
        let msgs = self.messages(batch);
        self.local_mut(local).deliver(msgs);
    }

    fn split_batch(&self, batch: MessageBatch, max: usize) -> Vec<MessageBatch> {
        let max = max.max(1);
        if batch.len() <= max {
            return vec![batch];
        }
        let pre_total = batch.pre_combine();
        let msgs = self.messages(batch);
        let combined_away = pre_total - msgs.len();
        let mut out = Vec::with_capacity(msgs.len().div_ceil(max));
        let mut iter = msgs.into_iter();
        loop {
            let chunk: Vec<(VertexId, P::Message)> = iter.by_ref().take(max).collect();
            if chunk.is_empty() {
                break;
            }
            let pre = chunk.len() + if out.is_empty() { combined_away } else { 0 };
            out.push(self.wrap_batch(pre, chunk));
        }
        out
    }

    fn execute(
        &self,
        local: &mut dyn LocalState,
        graph: &Topology,
        prev_aggregate: &Envelope,
        home: usize,
        route: &dyn Fn(VertexId) -> usize,
        scratch: &mut CombineScratch,
    ) -> (SuperstepStats, Envelope, Vec<(usize, MessageBatch)>) {
        let prev = self.aggregate(prev_aggregate);
        let (stats, agg, remote) =
            self.local_mut(local)
                .execute(graph, self.program.as_ref(), prev, home, route, scratch);
        let remote = remote
            .into_iter()
            .map(|(w, pre, msgs)| (w, self.wrap_batch(pre, msgs)))
            .collect();
        (stats, Box::new(agg), remote)
    }

    fn extract(
        &self,
        local: &mut dyn LocalState,
        vertices: &FxHashSet<VertexId>,
    ) -> Option<Envelope> {
        let entries = self.local_mut(local).extract(vertices);
        if entries.is_empty() {
            None
        } else {
            Some(Box::new(entries))
        }
    }

    fn inject(&self, local: &mut dyn LocalState, data: Envelope) {
        let entries = *data
            .downcast::<Vec<(VertexId, Option<P::State>, Vec<P::Message>)>>()
            .expect("query task type mismatch: migration envelope is not this program's");
        self.local_mut(local).inject(entries);
    }

    fn finalize(&self, graph: &Topology, locals: Vec<Box<dyn LocalState>>) -> Envelope {
        let mut states: FxHashMap<VertexId, P::State> = FxHashMap::default();
        for local in locals {
            let any: Box<dyn Any> = local;
            let local = any
                .downcast::<QueryLocal<P>>()
                .expect("query task type mismatch: local state is not this program's");
            states.extend(local.into_states());
        }
        let mut it = states.into_iter();
        Box::new(self.program.finalize(graph, &mut it))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::ReachProgram;
    use qgraph_graph::GraphBuilder;

    #[test]
    fn initial_batches_bucket_by_route() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = Topology::new(b.build());
        let task = TypedTask::new(ReachProgram::new(VertexId(2)));
        let batches = task.initial_batches(&g, &|v| v.0 as usize % 2, true);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].0, 0); // vertex 2 routes to worker 0
        assert_eq!(batches[0].1.len(), 1);
        assert_eq!(batches[0].1.pre_combine(), 1);
    }

    #[test]
    fn split_batch_chunks_at_cap_and_conserves_counts() {
        let task = TypedTask::new(ReachProgram::new(VertexId(0)));
        let msgs: Vec<(VertexId, u32)> = (0..7u32).map(|v| (VertexId(v), v)).collect();
        // Simulate a combiner that collapsed 3 messages: pre = 10.
        let batch = task.wrap_batch(10, msgs);
        let chunks = task.split_batch(batch, 3);
        assert_eq!(chunks.len(), 3, "7 msgs at cap 3");
        assert_eq!(
            chunks.iter().map(MessageBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert_eq!(
            chunks.iter().map(MessageBatch::pre_combine).sum::<usize>(),
            10,
            "pre-combine conserved across chunks"
        );
        // A batch under the cap passes through untouched.
        let small = task.wrap_batch(2, vec![(VertexId(0), 0), (VertexId(1), 1)]);
        let passthrough = task.split_batch(small, 3);
        assert_eq!(passthrough.len(), 1);
        assert_eq!(passthrough[0].len(), 2);
    }

    #[test]
    fn finalize_merges_worker_locals() {
        let g = Topology::new(GraphBuilder::new(4).build());
        let task = TypedTask::new(ReachProgram::new(VertexId(0)));
        // Two locals that each visited one vertex.
        let mk = |v: u32| -> Box<dyn LocalState> {
            let program = Arc::new(ReachProgram::new(VertexId(0)));
            let mut local = QueryLocal::<ReachProgram>::new(Arc::clone(&program), true);
            local.deliver(vec![(VertexId(v), 0u32)]);
            LocalState::freeze(&mut local);
            local.execute(
                &g,
                program.as_ref(),
                &(),
                0,
                &|_| 0,
                &mut CombineScratch::default(),
            );
            Box::new(local)
        };
        let out = task.finalize(&g, vec![mk(0), mk(3)]);
        let reached = out.downcast::<Vec<VertexId>>().expect("typed output");
        assert_eq!(*reached, vec![VertexId(0), VertexId(3)]);
    }

    #[test]
    fn aggregate_roundtrip_through_envelopes() {
        use crate::program::{Context, VertexProgram};
        #[derive(Clone)]
        struct SumProgram;
        impl VertexProgram for SumProgram {
            type State = ();
            type Message = u32;
            type Aggregate = u64;
            type Output = u64;
            fn init_state(&self) {}
            fn aggregate_identity(&self) -> u64 {
                0
            }
            fn aggregate_combine(&self, a: &mut u64, b: &u64) {
                *a += *b;
            }
            fn initial_messages(&self, _g: &Topology) -> Vec<(VertexId, u32)> {
                vec![]
            }
            fn compute(
                &self,
                _g: &Topology,
                _v: VertexId,
                _s: &mut (),
                _m: &[u32],
                _c: &mut Context<'_, u32, u64>,
            ) {
            }
            fn finalize(&self, _g: &Topology, _s: &mut dyn Iterator<Item = (VertexId, ())>) -> u64 {
                0
            }
        }
        let task = TypedTask::new(SumProgram);
        let mut acc = task.aggregate_identity();
        task.aggregate_combine(&mut acc, &(Box::new(5u64) as Envelope));
        task.aggregate_combine(
            &mut acc,
            &task.clone_aggregate(&(Box::new(7u64) as Envelope)),
        );
        assert_eq!(*acc.downcast_ref::<u64>().unwrap(), 12);
        assert!(!task.should_terminate(&acc));
    }
}
